#include "qdsim/ir/ir.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "qdsim/gate_library.h"
#include "qdsim/ir/json.h"

namespace qd::ir {

// ---------------------------------------------------------------- errors ---

ParseError::ParseError(Error e) : std::runtime_error(format(e)),
                                  error_(std::move(e)) {}

std::string
ParseError::format(const Error& e)
{
    std::string out = e.id + ": " + e.message;
    if (e.line > 0) {
        out += " (line " + std::to_string(e.line) + ")";
    }
    if (e.op_index >= 0) {
        out += " (op " + std::to_string(e.op_index) + ")";
    }
    return out;
}

verify::Report
to_report(const Error& error)
{
    verify::Report report;
    std::string message = error.message;
    if (error.line > 0) {
        message += " (line " + std::to_string(error.line) + ")";
    }
    report.add(error.id, verify::Severity::kError, error.op_index,
               std::move(message));
    return report;
}

// --------------------------------------------------------------- hashing ---

std::uint64_t
fnv1a(const std::uint8_t* data, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;  // FNV prime
    }
    return h;
}

namespace {

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

}  // namespace

std::vector<std::uint8_t>
canonical_bytes(const Circuit& circuit)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), {'Q', 'D', 'J', kQdjVersion});
    put_u32(out, static_cast<std::uint32_t>(circuit.num_wires()));
    for (const int d : circuit.dims().dims()) {
        put_u32(out, static_cast<std::uint32_t>(d));
    }
    put_u64(out, static_cast<std::uint64_t>(circuit.num_ops()));
    for (const Operation& op : circuit.ops()) {
        put_u32(out, static_cast<std::uint32_t>(op.wires.size()));
        for (const int w : op.wires) {
            put_u32(out, static_cast<std::uint32_t>(w));
        }
        const Matrix& m = op.gate.matrix();
        put_u64(out, static_cast<std::uint64_t>(m.rows()));
        for (const Complex& v : m.data()) {
            put_u64(out, std::bit_cast<std::uint64_t>(v.real()));
            put_u64(out, std::bit_cast<std::uint64_t>(v.imag()));
        }
    }
    return out;
}

std::uint64_t
circuit_hash(const Circuit& circuit)
{
    const std::vector<std::uint8_t> bytes = canonical_bytes(circuit);
    return fnv1a(bytes.data(), bytes.size());
}

// -------------------------------------------------------------- encoding ---

namespace {

// Decode limits for untrusted input: far above anything the engines can
// simulate, low enough that a hostile document cannot make the decoder
// itself allocate unboundedly.
constexpr int kMaxWires = 64;
constexpr int kMaxDim = 64;
constexpr Index kMaxStates = Index{1} << 32;
constexpr std::size_t kMaxMatrixRows = 4096;

/** Full-precision text form of a double ("%a" hex-float). */
std::string
hexfloat(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

void
append_escaped(std::string& out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;  // UTF-8 bytes (e.g. the dagger) pass through
            }
        }
    }
    out += '"';
}

void
append_ints(std::string& out, const std::vector<int>& v)
{
    out += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) {
            out += ',';
        }
        out += std::to_string(v[i]);
    }
    out += ']';
}

/** Emits the members of a gate spec ("gate", "i", "r", "base"), no braces. */
void
append_spec_members(std::string& out, const gates::GateSpec& spec)
{
    out += "\"gate\":";
    append_escaped(out, spec.family);
    if (!spec.iparams.empty()) {
        out += ",\"i\":";
        append_ints(out, spec.iparams);
    }
    if (!spec.rparams.empty()) {
        out += ",\"r\":[";
        for (std::size_t i = 0; i < spec.rparams.size(); ++i) {
            if (i != 0) {
                out += ',';
            }
            append_escaped(out, hexfloat(spec.rparams[i]));
        }
        out += ']';
    }
    if (spec.base) {
        out += ",\"base\":{";
        append_spec_members(out, *spec.base);
        out += '}';
    }
}

void
append_op(std::string& out, const Operation& op)
{
    out += "    {";
    if (const auto spec = gates::recognize_gate(op.gate)) {
        append_spec_members(out, *spec);
    } else {
        out += "\"gate\":\"matrix\",\"name\":";
        append_escaped(out, op.gate.name());
        out += ",\"m\":[";
        const Matrix& m = op.gate.matrix();
        for (std::size_t r = 0; r < m.rows(); ++r) {
            if (r != 0) {
                out += ',';
            }
            out += '[';
            for (std::size_t c = 0; c < m.cols(); ++c) {
                if (c != 0) {
                    out += ',';
                }
                out += '[';
                append_escaped(out, hexfloat(m(r, c).real()));
                out += ',';
                append_escaped(out, hexfloat(m(r, c).imag()));
                out += ']';
            }
            out += ']';
        }
        out += ']';
    }
    out += ",\"wires\":";
    append_ints(out, op.wires);
    out += '}';
}

void
append_circuit_members(std::string& out, const Circuit& circuit)
{
    out += "  \"dims\": ";
    append_ints(out, circuit.dims().dims());
    out += ",\n  \"ops\": [\n";
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        append_op(out, ops[i]);
        if (i + 1 != ops.size()) {
            out += ',';
        }
        out += '\n';
    }
    out += "  ]";
}

}  // namespace

std::string
to_qdj(const Circuit& circuit)
{
    std::string out = "{\n  \"qdj\": " + std::to_string(kQdjVersion) +
                      ",\n  \"kind\": \"circuit\",\n";
    append_circuit_members(out, circuit);
    out += "\n}\n";
    return out;
}

std::string
to_qdj(const Job& job)
{
    std::string out = "{\n  \"qdj\": " + std::to_string(kQdjVersion) +
                      ",\n  \"kind\": \"job\",\n";
    if (!job.name.empty()) {
        out += "  \"name\": ";
        append_escaped(out, job.name);
        out += ",\n";
    }
    out += "  \"engine\": ";
    append_escaped(out, job.engine);
    out += ",\n  \"shots\": " + std::to_string(job.shots);
    out += ",\n  \"seed\": " + std::to_string(job.seed);
    out += ",\n  \"batch\": " + std::to_string(job.batch);
    out += ",\n  \"fusion\": ";
    out += job.fusion ? "true" : "false";
    if (!job.noise.empty()) {
        out += ",\n  \"noise\": ";
        append_escaped(out, job.noise);
    }
    out += ",\n  \"circuit\": {\n";
    append_circuit_members(out, job.circuit);
    out += "\n  }\n}\n";
    return out;
}

// -------------------------------------------------------------- decoding ---

namespace {

using json::Value;
using Kind = Value::Kind;

[[noreturn]] void
fail(const char* id, std::string message, int line, long op_index = -1)
{
    throw ParseError({id, std::move(message), line, op_index});
}

const Value&
require(const Value& obj, std::string_view key, const char* id,
        long op_index = -1)
{
    const Value* v = obj.find(key);
    if (v == nullptr) {
        fail(id, "missing \"" + std::string(key) + "\" member", obj.line,
             op_index);
    }
    return *v;
}

long long
require_int(const Value& v, const char* id, const char* what,
            long op_index = -1)
{
    if (!v.is(Kind::kNumber) || !v.integral) {
        fail(id, std::string(what) + " must be an integer", v.line, op_index);
    }
    return v.integer;
}

const std::string&
require_string(const Value& v, const char* id, const char* what,
               long op_index = -1)
{
    if (!v.is(Kind::kString)) {
        fail(id, std::string(what) + " must be a string", v.line, op_index);
    }
    return v.string;
}

/** Numeric literal: a JSON number, or a string holding a hex-float. */
double
decode_real(const Value& v, long op_index)
{
    if (v.is(Kind::kNumber)) {
        return v.number;
    }
    if (v.is(Kind::kString)) {
        const std::string& s = v.string;
        if (!s.empty()) {
            char* end = nullptr;
            const double d = std::strtod(s.c_str(), &end);
            if (end == s.c_str() + s.size()) {
                return d;
            }
        }
        fail("qdj.number", "unparseable numeric literal \"" + s + "\"",
             v.line, op_index);
    }
    fail("qdj.number", "expected a number or a hex-float string", v.line,
         op_index);
}

double
decode_finite_real(const Value& v, long op_index)
{
    const double d = decode_real(v, op_index);
    if (!std::isfinite(d)) {
        fail("qdj.non-finite", "non-finite value \"" +
             (v.is(Kind::kString) ? v.string : std::to_string(v.number)) +
             "\"", v.line, op_index);
    }
    return d;
}

std::vector<int>
decode_dims(const Value& v)
{
    if (!v.is(Kind::kArray) || v.array.empty()) {
        fail("qdj.dims", "\"dims\" must be a non-empty array", v.line);
    }
    if (v.array.size() > kMaxWires) {
        fail("qdj.dims", "too many wires (max " +
             std::to_string(kMaxWires) + ")", v.line);
    }
    std::vector<int> dims;
    Index total = 1;
    for (const Value& e : v.array) {
        const long long d = require_int(e, "qdj.dims", "wire dim");
        if (d < 2 || d > kMaxDim) {
            fail("qdj.dims", "wire dim " + std::to_string(d) +
                 " out of range [2, " + std::to_string(kMaxDim) + "]",
                 e.line);
        }
        total *= static_cast<Index>(d);
        if (total > kMaxStates) {
            fail("qdj.dims", "register too large to simulate", e.line);
        }
        dims.push_back(static_cast<int>(d));
    }
    return dims;
}

gates::GateSpec
decode_spec(const Value& v, long op_index)
{
    gates::GateSpec spec;
    spec.family = require_string(require(v, "gate", "qdj.schema", op_index),
                                 "qdj.schema", "\"gate\"", op_index);
    if (!gates::registry_has_family(spec.family)) {
        fail("qdj.unknown-gate",
             "unknown gate family \"" + spec.family + "\"", v.line, op_index);
    }
    if (const Value* i = v.find("i")) {
        if (!i->is(Kind::kArray)) {
            fail("qdj.params", "\"i\" must be an array of integers", i->line,
                 op_index);
        }
        for (const Value& e : i->array) {
            const long long x =
                require_int(e, "qdj.params", "integer parameter", op_index);
            if (x < 0 || x > kMaxDim * kMaxDim) {
                fail("qdj.params", "integer parameter out of range", e.line,
                     op_index);
            }
            spec.iparams.push_back(static_cast<int>(x));
        }
    }
    if (const Value* r = v.find("r")) {
        if (!r->is(Kind::kArray)) {
            fail("qdj.params", "\"r\" must be an array of reals", r->line,
                 op_index);
        }
        for (const Value& e : r->array) {
            spec.rparams.push_back(decode_finite_real(e, op_index));
        }
    }
    if (const Value* base = v.find("base")) {
        if (!base->is(Kind::kObject)) {
            fail("qdj.params", "\"base\" must be a gate object", base->line,
                 op_index);
        }
        spec.base = std::make_shared<const gates::GateSpec>(
            decode_spec(*base, op_index));
    }
    return spec;
}

Gate
decode_matrix_gate(const Value& v, const std::vector<int>& operand_dims,
                   long op_index)
{
    std::string name = "matrix";
    if (const Value* n = v.find("name")) {
        name = require_string(*n, "qdj.schema", "\"name\"", op_index);
    }
    std::size_t n = 1;
    for (const int d : operand_dims) {
        n *= static_cast<std::size_t>(d);
    }
    if (n > kMaxMatrixRows) {
        fail("qdj.matrix", "raw matrix too large (" + std::to_string(n) +
             " rows; max " + std::to_string(kMaxMatrixRows) + ")", v.line,
             op_index);
    }
    const Value& m = require(v, "m", "qdj.matrix", op_index);
    if (!m.is(Kind::kArray) || m.array.size() != n) {
        fail("qdj.matrix", "expected " + std::to_string(n) +
             " matrix rows for the operand wires", m.line, op_index);
    }
    Matrix out(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        const Value& row = m.array[r];
        if (!row.is(Kind::kArray) || row.array.size() != n) {
            fail("qdj.matrix", "matrix row " + std::to_string(r) +
                 " must have " + std::to_string(n) + " entries", row.line,
                 op_index);
        }
        for (std::size_t c = 0; c < n; ++c) {
            const Value& entry = row.array[c];
            if (!entry.is(Kind::kArray) || entry.array.size() != 2) {
                fail("qdj.matrix",
                     "matrix entry must be a [re, im] pair", entry.line,
                     op_index);
            }
            out(r, c) = Complex(decode_finite_real(entry.array[0], op_index),
                                decode_finite_real(entry.array[1], op_index));
        }
    }
    return gates::from_matrix(std::move(name), operand_dims, std::move(out));
}

void
decode_op(const Value& v, long op_index, const std::vector<int>& dims,
          Circuit& circuit)
{
    if (!v.is(Kind::kObject)) {
        fail("qdj.schema", "op must be an object", v.line, op_index);
    }
    const Value& wires_v = require(v, "wires", "qdj.wires", op_index);
    if (!wires_v.is(Kind::kArray) || wires_v.array.empty()) {
        fail("qdj.wires", "\"wires\" must be a non-empty array", wires_v.line,
             op_index);
    }
    std::vector<int> wires;
    std::vector<int> operand_dims;
    for (const Value& e : wires_v.array) {
        const long long w = require_int(e, "qdj.wires", "wire", op_index);
        if (w < 0 || w >= static_cast<long long>(dims.size())) {
            fail("qdj.wires", "wire " + std::to_string(w) +
                 " out of range for a " + std::to_string(dims.size()) +
                 "-wire register", e.line, op_index);
        }
        for (const int seen : wires) {
            if (seen == static_cast<int>(w)) {
                fail("qdj.wires", "duplicate wire " + std::to_string(w),
                     e.line, op_index);
            }
        }
        wires.push_back(static_cast<int>(w));
        operand_dims.push_back(dims[static_cast<std::size_t>(w)]);
    }

    const std::string& family = require_string(
        require(v, "gate", "qdj.schema", op_index), "qdj.schema", "\"gate\"",
        op_index);
    Gate gate;
    if (family == "matrix") {
        gate = decode_matrix_gate(v, operand_dims, op_index);
    } else {
        const gates::GateSpec spec = decode_spec(v, op_index);
        try {
            gate = gates::build_gate(spec, operand_dims);
        } catch (const std::invalid_argument& e) {
            fail("qdj.params", e.what(), v.line, op_index);
        }
    }
    if (gate.dims() != operand_dims) {
        fail("qdj.dim-mismatch", "gate \"" + gate.name() +
             "\" does not act on the operand wire dims", v.line, op_index);
    }
    circuit.append(gate, wires);
}

Circuit
decode_circuit_body(const Value& v)
{
    if (!v.is(Kind::kObject)) {
        fail("qdj.schema", "\"circuit\" must be an object", v.line);
    }
    const std::vector<int> dims =
        decode_dims(require(v, "dims", "qdj.schema"));
    const Value& ops = require(v, "ops", "qdj.schema");
    if (!ops.is(Kind::kArray)) {
        fail("qdj.schema", "\"ops\" must be an array", ops.line);
    }
    Circuit circuit{WireDims(dims)};
    for (std::size_t i = 0; i < ops.array.size(); ++i) {
        decode_op(ops.array[i], static_cast<long>(i), dims, circuit);
    }
    return circuit;
}

/** Parses the document, checks version, returns (kind, root). */
std::pair<std::string, Value>
decode_document(std::string_view text)
{
    Value doc = json::parse(text);
    if (!doc.is(Kind::kObject)) {
        fail("qdj.schema", "top-level value must be an object", doc.line);
    }
    const Value* version = doc.find("qdj");
    if (version == nullptr) {
        fail("qdj.version", "missing \"qdj\" version field", doc.line);
    }
    const long long vnum = require_int(*version, "qdj.version",
                                       "\"qdj\" version");
    if (vnum != kQdjVersion) {
        fail("qdj.version", "unsupported .qdj version " +
             std::to_string(vnum) + " (this build reads version " +
             std::to_string(kQdjVersion) + ")", version->line);
    }
    std::string kind = require_string(require(doc, "kind", "qdj.schema"),
                                      "qdj.schema", "\"kind\"");
    if (kind != "circuit" && kind != "job") {
        fail("qdj.schema", "unknown document kind \"" + kind + "\"",
             doc.line);
    }
    return {std::move(kind), std::move(doc)};
}

}  // namespace

Circuit
circuit_from_qdj(std::string_view text)
{
    auto [kind, doc] = decode_document(text);
    if (kind != "circuit") {
        fail("qdj.schema",
             "expected a kind \"circuit\" document, got \"" + kind + "\"",
             doc.line);
    }
    return decode_circuit_body(doc);
}

Job
job_from_qdj(std::string_view text)
{
    auto [kind, doc] = decode_document(text);
    Job job;
    if (kind == "circuit") {
        job.circuit = decode_circuit_body(doc);
        return job;
    }
    if (const Value* name = doc.find("name")) {
        job.name = require_string(*name, "qdj.job", "\"name\"");
    }
    if (const Value* engine = doc.find("engine")) {
        job.engine = require_string(*engine, "qdj.job", "\"engine\"");
    }
    if (job.engine != "state" && job.engine != "trajectory" &&
        job.engine != "density") {
        fail("qdj.job", "unknown engine \"" + job.engine +
             "\" (expected state, trajectory or density)", doc.line);
    }
    if (const Value* shots = doc.find("shots")) {
        const long long s = require_int(*shots, "qdj.job", "\"shots\"");
        if (s < 1 || s > 100000000) {
            fail("qdj.job", "\"shots\" out of range", shots->line);
        }
        job.shots = static_cast<int>(s);
    }
    if (const Value* seed = doc.find("seed")) {
        const long long s = require_int(*seed, "qdj.job", "\"seed\"");
        if (s < 0) {
            fail("qdj.job", "\"seed\" must be non-negative", seed->line);
        }
        job.seed = static_cast<std::uint64_t>(s);
    }
    if (const Value* batch = doc.find("batch")) {
        const long long b = require_int(*batch, "qdj.job", "\"batch\"");
        if (b < 0 || b > 4096) {
            fail("qdj.job", "\"batch\" out of range", batch->line);
        }
        job.batch = static_cast<int>(b);
    }
    if (const Value* fusion = doc.find("fusion")) {
        if (!fusion->is(Kind::kBool)) {
            fail("qdj.job", "\"fusion\" must be a boolean", fusion->line);
        }
        job.fusion = fusion->boolean;
    }
    if (const Value* noise = doc.find("noise")) {
        job.noise = require_string(*noise, "qdj.job", "\"noise\"");
    }
    if (job.noise.empty() &&
        (job.engine == "trajectory" || job.engine == "density")) {
        fail("qdj.job", "engine \"" + job.engine +
             "\" requires a \"noise\" preset", doc.line);
    }
    job.circuit = decode_circuit_body(require(doc, "circuit", "qdj.schema"));
    return job;
}

}  // namespace qd::ir
