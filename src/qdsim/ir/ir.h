/**
 * @file ir.h
 * Versioned, stable circuit IR: the human-readable `.qdj` JSON text form
 * plus a canonical byte encoding used for content hashing.
 *
 * The text form round-trips `Circuit` exactly:
 *   - mixed-radix wire dims are explicit ("dims": [3, 3, 2, ...]);
 *   - gate-library gates serialize by registered family + parameters
 *     (gates::recognize_gate / gates::build_gate), reconstructed
 *     canonically on decode;
 *   - everything else serializes as a raw matrix with full-precision
 *     hex-float entries ("0x1.5bf0a8b145769p+1"), so doubles survive the
 *     text round-trip bit for bit.
 *
 * The canonical byte encoding covers the semantic content only — wire
 * dims, per-op wires, and matrix entry bit patterns; gate names are
 * excluded — and is hashed with FNV-1a 64 into `circuit_hash`, the
 * cross-request cache key the CompileService uses.
 *
 * Decode failures of untrusted input always throw ir::ParseError carrying
 * a stable dotted error id; they never crash. The ids are:
 *
 *   qdj.syntax        malformed JSON (truncated file, bad token, ...)
 *   qdj.version       missing or unsupported "qdj" version field
 *   qdj.schema        wrong document shape (missing/ill-typed members)
 *   qdj.dims          illegal wire dims (dim < 2, too many wires, ...)
 *   qdj.wires         bad op wires (out of range, duplicate, empty)
 *   qdj.unknown-gate  gate family not in the registry
 *   qdj.params        wrong parameters for a registered family
 *   qdj.dim-mismatch  gate dims do not match the operand wires
 *   qdj.matrix        raw matrix with the wrong shape
 *   qdj.number        unparseable numeric literal (hex-float strings)
 *   qdj.non-finite    NaN/Inf matrix entry or parameter
 *   qdj.job           bad job envelope (engine, shots, noise, ...)
 */
#ifndef QDSIM_IR_IR_H
#define QDSIM_IR_IR_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qdsim/circuit.h"
#include "qdsim/ir/errors.h"
#include "qdsim/verify/report.h"

namespace qd::ir {

/** Current .qdj schema version (the "qdj" field). */
inline constexpr int kQdjVersion = 1;

// --------------------------------------------------------------- hashing ---

/** FNV-1a 64 over a byte string. */
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n);

/**
 * Canonical byte encoding of a circuit: magic + version, wire dims,
 * then per op its wires and the raw bit patterns of every matrix entry.
 * Gate names are excluded — circuits that apply the same matrices to the
 * same wires encode (and hash) identically regardless of labeling.
 */
std::vector<std::uint8_t> canonical_bytes(const Circuit& circuit);

/** Content hash of a circuit: fnv1a(canonical_bytes(circuit)). */
std::uint64_t circuit_hash(const Circuit& circuit);

// ------------------------------------------------------------- .qdj text ---

/** Serializes a circuit to .qdj text (kind "circuit"). */
std::string to_qdj(const Circuit& circuit);

/**
 * Parses .qdj text with kind "circuit" back into a Circuit.
 * @throws ParseError with a stable qdj.* id on any malformed input.
 */
Circuit circuit_from_qdj(std::string_view text);

/** One executable .qdj job: a circuit plus how to run it. */
struct Job {
    std::string name;              ///< label carried into result JSON
    std::string engine = "state";  ///< "state" | "trajectory" | "density"
    int shots = 100;               ///< trajectory trial count
    std::uint64_t seed = 2019;     ///< RNG root seed
    int batch = 0;                 ///< trajectory lane width (0 = auto)
    bool fusion = true;            ///< compile with fusion enabled
    std::string noise;             ///< noise preset name ("" = ideal)
    Circuit circuit;
};

/** Serializes a job to .qdj text (kind "job"). */
std::string to_qdj(const Job& job);

/**
 * Parses .qdj text into a Job. A kind "circuit" document yields a Job
 * with default execution fields (state engine, no noise).
 * @throws ParseError with a stable qdj.* id on any malformed input.
 */
Job job_from_qdj(std::string_view text);

/** Converts a decode failure into a verify Report (one kError finding
 *  whose rule is the stable qdj.* id), so IR rejections flow through the
 *  same structured-report channel as verification rejections. */
verify::Report to_report(const Error& error);

}  // namespace qd::ir

#endif  // QDSIM_IR_IR_H
