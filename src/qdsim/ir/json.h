/**
 * @file json.h
 * Minimal JSON reader for the .qdj circuit IR.
 *
 * A small recursive-descent parser producing a DOM with per-value source
 * lines (decode errors point at the offending line of untrusted input).
 * Deliberately dependency-free: the IR must parse in every build the
 * simulator builds in. Syntax failures throw ir::ParseError with the
 * stable id "qdj.syntax".
 */
#ifndef QDSIM_IR_JSON_H
#define QDSIM_IR_JSON_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qdsim/ir/errors.h"

namespace qd::ir::json {

/** One parsed JSON value. */
struct Value {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    int line = 1;          ///< 1-based source line where the value starts
    bool boolean = false;  ///< kBool payload
    double number = 0;     ///< kNumber payload
    bool integral = false; ///< number was written as an integer and fits i64
    long long integer = 0; ///< integer value when `integral`
    std::string string;    ///< kString payload
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool is(Kind k) const { return kind == k; }

    /** First member with `key`, or nullptr (valid only for kObject). */
    const Value* find(std::string_view key) const;
};

/**
 * Parses one complete JSON document (trailing garbage rejected).
 * @throws ParseError with id "qdj.syntax" on malformed input.
 */
Value parse(std::string_view text);

}  // namespace qd::ir::json

#endif  // QDSIM_IR_JSON_H
