#include "qdsim/ir/json.h"

#include <cerrno>
#include <cstdlib>

namespace qd::ir::json {

const Value*
Value::find(std::string_view key) const
{
    for (const auto& [k, v] : object) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

namespace {

// Untrusted input: bound recursion so a deeply nested document cannot
// overflow the stack (real .qdj nesting is < 10).
constexpr int kMaxDepth = 64;

class Parser {
 public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value run()
    {
        Value v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON document");
        }
        return v;
    }

 private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw ParseError({"qdj.syntax", what, line_, -1});
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
            } else if (c != ' ' && c != '\t' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0) {
            return false;
        }
        pos_ += lit.size();
        return true;
    }

    Value parse_value(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
        }
        skip_ws();
        Value v;
        v.line = line_;
        const char c = peek();
        switch (c) {
        case '{':
            parse_object(v, depth);
            break;
        case '[':
            parse_array(v, depth);
            break;
        case '"':
            v.kind = Value::Kind::kString;
            v.string = parse_string();
            break;
        case 't':
            if (!consume_literal("true")) {
                fail("invalid literal");
            }
            v.kind = Value::Kind::kBool;
            v.boolean = true;
            break;
        case 'f':
            if (!consume_literal("false")) {
                fail("invalid literal");
            }
            v.kind = Value::Kind::kBool;
            break;
        case 'n':
            if (!consume_literal("null")) {
                fail("invalid literal");
            }
            break;
        default:
            parse_number(v);
            break;
        }
        return v;
    }

    void parse_object(Value& v, int depth)
    {
        v.kind = Value::Kind::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') {
                fail("expected a string object key");
            }
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void parse_array(Value& v, int depth)
    {
        v.kind = Value::Kind::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            v.array.push_back(parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c == '\n') {
                fail("raw newline inside string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("invalid \\u escape");
                    }
                }
                // Encode the code point as UTF-8 (surrogate pairs are not
                // needed for gate names; a lone surrogate is rejected).
                if (code >= 0xD800 && code <= 0xDFFF) {
                    fail("surrogate \\u escapes are not supported");
                }
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    void parse_number(Value& v)
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
            fail("invalid value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        errno = 0;
        v.kind = Value::Kind::kNumber;
        v.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail("malformed number");
        }
        if (integral) {
            errno = 0;
            char* iend = nullptr;
            const long long i = std::strtoll(token.c_str(), &iend, 10);
            if (errno == 0 && iend == token.c_str() + token.size()) {
                v.integral = true;
                v.integer = i;
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

}  // namespace

Value
parse(std::string_view text)
{
    return Parser(text).run();
}

}  // namespace qd::ir::json
