/**
 * @file diagram.h
 * ASCII circuit diagrams in the paper's visual convention: one row per
 * wire, controls drawn as their activation level (the paper's red "1" /
 * blue "2" / "0" controls), targets as gate-name boxes, verticals joining
 * the operands of multi-wire gates.
 */
#ifndef QDSIM_DIAGRAM_H
#define QDSIM_DIAGRAM_H

#include <string>

#include "qdsim/circuit.h"

namespace qd {

/** Rendering options. */
struct DiagramOptions {
    /** Collapse operations into ASAP moments (columns share a time step)
     *  instead of one column per operation. */
    bool by_moments = true;
    /** Maximum rendered columns; longer circuits are truncated with an
     *  ellipsis column. */
    int max_columns = 48;
    /** Wire label prefix, e.g. "q" -> q0, q1, ... */
    std::string wire_prefix = "q";
};

/**
 * Renders the circuit as a multi-line ASCII diagram. Controlled gates
 * built via Gate::controlled draw each control as its activation level on
 * the control wire and the base gate name on the target wire; other
 * multi-wire gates draw their name on every operand.
 */
std::string render_diagram(const Circuit& circuit,
                           const DiagramOptions& options = {});

}  // namespace qd

#endif  // QDSIM_DIAGRAM_H
