#include "qdsim/classical.h"

#include <stdexcept>

namespace qd {

bool
is_classical_circuit(const Circuit& circuit)
{
    for (const Operation& op : circuit.ops()) {
        if (!op.gate.is_permutation()) {
            return false;
        }
    }
    return true;
}

std::vector<int>
classical_run(const Circuit& circuit, std::vector<int> input)
{
    if (static_cast<int>(input.size()) != circuit.num_wires()) {
        throw std::invalid_argument("classical_run: input width mismatch");
    }
    for (const Operation& op : circuit.ops()) {
        const Gate& g = op.gate;
        if (!g.is_permutation()) {
            throw std::invalid_argument("classical_run: gate " + g.name() +
                                        " has no classical action");
        }
        // Pack operand digits into a local index (operand 0 most
        // significant), permute, unpack.
        Index local = 0;
        for (std::size_t i = 0; i < op.wires.size(); ++i) {
            local = local * static_cast<Index>(g.dims()[i]) +
                    static_cast<Index>(
                        input[static_cast<std::size_t>(op.wires[i])]);
        }
        Index out = g.permute(local);
        for (std::size_t i = op.wires.size(); i-- > 0;) {
            const Index d = static_cast<Index>(g.dims()[i]);
            input[static_cast<std::size_t>(op.wires[i])] =
                static_cast<int>(out % d);
            out /= d;
        }
    }
    return input;
}

std::vector<int>
verify_exhaustive(const Circuit& circuit, int radix,
                  const std::function<std::vector<int>(
                      const std::vector<int>&)>& reference)
{
    const int n = circuit.num_wires();
    std::vector<int> digits(static_cast<std::size_t>(n), 0);
    for (;;) {
        const std::vector<int> expected = reference(digits);
        const std::vector<int> actual = classical_run(circuit, digits);
        if (expected != actual) {
            return digits;
        }
        // Advance radix-limited odometer.
        int w = n - 1;
        for (; w >= 0; --w) {
            auto& d = digits[static_cast<std::size_t>(w)];
            if (++d < radix) {
                break;
            }
            d = 0;
        }
        if (w < 0) {
            return {};
        }
    }
}

}  // namespace qd
