/**
 * @file gate_library.h
 * Standard qubit, qutrit and generic-qudit gates (paper Section 2, Fig. 3).
 *
 * Naming follows the paper: ternary X gates X01/X02/X12 swap two basis
 * levels; X+1/X-1 cycle all three levels; Z3 is the ternary phase gate
 * diag(1, w, w^2) with w = exp(2 pi i / 3).
 */
#ifndef QDSIM_GATE_LIBRARY_H
#define QDSIM_GATE_LIBRARY_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qdsim/gate.h"

namespace qd::gates {

// ---------------------------------------------------------------- qubit ---

/** Pauli X (NOT). */
Gate X();
/** Pauli Y. */
Gate Y();
/** Pauli Z. */
Gate Z();
/** Hadamard. */
Gate H();
/** Phase gate S = diag(1, i). */
Gate S();
/** T gate = diag(1, exp(i pi/4)). */
Gate T();
/** Phase gate diag(1, exp(i phi)). */
Gate P(Real phi);
/** Z rotation exp(-i phi Z / 2). */
Gate RZ(Real phi);
/** X^t: fractional NOT, t in (0,1]; X^{1/2} is the sqrt(X) gate. */
Gate Xpow(Real t);

/** CNOT = X controlled on |1>. */
Gate CNOT();
/** CZ = Z controlled on |1>. */
Gate CZ();
/** Toffoli (CCX) on qubits. */
Gate CCX();

// --------------------------------------------------------------- qutrit ---

/** Swaps |0> and |1>, leaves |2>. */
Gate X01();
/** Swaps |0> and |2>, leaves |1>. */
Gate X02();
/** Swaps |1> and |2>, leaves |0>. */
Gate X12();
/** +1 mod 3 cycle: |0>->|1>->|2>->|0>. */
Gate Xplus1();
/** -1 mod 3 cycle (inverse of X+1). */
Gate Xminus1();
/** Ternary Z: diag(1, w, w^2), w = exp(2 pi i/3). */
Gate Z3();
/** Ternary Hadamard (3-point discrete Fourier transform). */
Gate H3();

// ---------------------------------------------------------------- qudit ---

/** +1 mod d cycle on a d-level qudit. */
Gate shift(int d);
/** -1 mod d cycle on a d-level qudit. */
Gate unshift(int d);
/** Swaps levels a and b of a d-level qudit. */
Gate swap_levels(int d, int a, int b);
/** diag(..., exp(i phi) at `level`, ...) on a d-level qudit. */
Gate phase_level(int d, int level, Real phi);
/** Generalized Pauli Z: diag(w^0, ..., w^{d-1}), w = exp(2 pi i/d). */
Gate Zd(int d);
/** d-point discrete Fourier transform (generalised Hadamard). */
Gate fourier(int d);

/**
 * Embeds a qubit gate into the {|0>,|1>} subspace of a d-level qudit,
 * acting as identity on the remaining levels. This is how the paper applies
 * binary logic on wires that are physically qutrits.
 */
Gate embed(const Gate& qubit_gate, int d);

/** Gate from an explicit unitary; permutation action derived if possible. */
Gate from_matrix(std::string name, std::vector<int> dims, Matrix m);

// ------------------------------------------------------------- registry ---
//
// Name -> factory registry used by the circuit IR (src/qdsim/ir/): a
// GateSpec identifies a library gate family plus its parameters, so a
// serialized circuit can reconstruct library gates canonically instead of
// shipping raw matrices. Structural families (shift, swap_levels, ...)
// derive their qudit dimension from the operand wires at build time;
// wrapper families (controlled, embed, inverse) nest a base spec.

/** A registered gate family plus the parameters that select one member. */
struct GateSpec {
    std::string family;                     ///< registered family name
    std::vector<int> iparams;               ///< integer params (levels, control values)
    std::vector<Real> rparams;              ///< real params (angles, exponents)
    std::shared_ptr<const GateSpec> base;   ///< wrapped spec (controlled/embed/inverse)
};

/** True when `family` names a registered gate family. */
bool registry_has_family(const std::string& family);

/** Every registered family name, in stable (sorted) order. */
std::vector<std::string> registry_families();

/**
 * Rebuilds the gate a spec describes for operands of the given dims.
 * Fixed-dimension families (X, CNOT, H3, ...) ignore `operand_dims`;
 * structural families read the qudit dimension from `operand_dims[0]`
 * (controlled splits it into control dims + inner dims).
 *
 * @throws std::invalid_argument on an unknown family or bad parameters.
 */
Gate build_gate(const GateSpec& spec, const std::vector<int>& operand_dims);

/**
 * Tries to express `gate` as a registered family + parameters such that
 * `build_gate(spec, gate.dims())` reproduces it BITWISE: same name, same
 * dims, and a matrix whose every entry has identical bit patterns. Returns
 * nullopt when no canonical reconstruction matches — IR serialization then
 * falls back to the exact raw-matrix form, so round-trips stay lossless
 * either way.
 */
std::optional<GateSpec> recognize_gate(const Gate& gate);

}  // namespace qd::gates

#endif  // QDSIM_GATE_LIBRARY_H
