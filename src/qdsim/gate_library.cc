#include "qdsim/gate_library.h"

#include <cmath>
#include <stdexcept>

namespace qd::gates {

namespace {

Complex
root_of_unity(int d, int power)
{
    const Real ang = 2 * kPi * static_cast<Real>(power) / static_cast<Real>(d);
    return Complex(std::cos(ang), std::sin(ang));
}

}  // namespace

Gate
X()
{
    return Gate("X", {2}, Matrix{{0, 1}, {1, 0}});
}

Gate
Y()
{
    return Gate("Y", {2},
                Matrix{{0, Complex(0, -1)}, {Complex(0, 1), 0}});
}

Gate
Z()
{
    return Gate("Z", {2}, Matrix{{1, 0}, {0, -1}});
}

Gate
H()
{
    const Real s = 1.0 / std::sqrt(2.0);
    return Gate("H", {2}, Matrix{{s, s}, {s, -s}});
}

Gate
S()
{
    return Gate("S", {2}, Matrix{{1, 0}, {0, Complex(0, 1)}});
}

Gate
T()
{
    return Gate("T", {2},
                Matrix{{1, 0}, {0, std::polar(1.0, kPi / 4)}});
}

Gate
P(Real phi)
{
    return Gate("P(" + std::to_string(phi) + ")", {2},
                Matrix{{1, 0}, {0, std::polar(1.0, phi)}});
}

Gate
RZ(Real phi)
{
    return Gate("RZ(" + std::to_string(phi) + ")", {2},
                Matrix{{std::polar(1.0, -phi / 2), 0},
                       {0, std::polar(1.0, phi / 2)}});
}

Gate
Xpow(Real t)
{
    // X^t = H P(pi t) H up to global phase; build directly for clarity.
    const Complex a = Complex(0.5, 0) *
                      (Complex(1, 0) + std::polar(1.0, kPi * t));
    const Complex b = Complex(0.5, 0) *
                      (Complex(1, 0) - std::polar(1.0, kPi * t));
    return Gate("X^" + std::to_string(t), {2}, Matrix{{a, b}, {b, a}});
}

Gate
CNOT()
{
    return X().controlled(2, 1);
}

Gate
CZ()
{
    return Z().controlled(2, 1);
}

Gate
CCX()
{
    return X().controlled({2, 2}, {1, 1});
}

Gate
X01()
{
    return swap_levels(3, 0, 1);
}

Gate
X02()
{
    return swap_levels(3, 0, 2);
}

Gate
X12()
{
    return swap_levels(3, 1, 2);
}

Gate
Xplus1()
{
    return shift(3);
}

Gate
Xminus1()
{
    return unshift(3);
}

Gate
Z3()
{
    return Zd(3);
}

Gate
H3()
{
    return fourier(3);
}

Gate
shift(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c) {
        m(static_cast<std::size_t>((c + 1) % d),
          static_cast<std::size_t>(c)) = Complex(1, 0);
    }
    const std::string name = d == 3 ? "X+1" : "X+1(d=" + std::to_string(d) + ")";
    return Gate(name, {d}, std::move(m));
}

Gate
unshift(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c) {
        m(static_cast<std::size_t>((c + d - 1) % d),
          static_cast<std::size_t>(c)) = Complex(1, 0);
    }
    const std::string name = d == 3 ? "X-1" : "X-1(d=" + std::to_string(d) + ")";
    return Gate(name, {d}, std::move(m));
}

Gate
swap_levels(int d, int a, int b)
{
    if (a == b || a >= d || b >= d || a < 0 || b < 0) {
        throw std::invalid_argument("swap_levels: bad levels");
    }
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    m(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) = 0;
    m(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) = 0;
    m(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = 1;
    m(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) = 1;
    std::string name = "X";
    name += std::to_string(a);
    name += std::to_string(b);
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
phase_level(int d, int level, Real phi)
{
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    m(static_cast<std::size_t>(level), static_cast<std::size_t>(level)) =
        std::polar(1.0, phi);
    std::string name = "P";
    name += std::to_string(level);
    name += "(";
    name += std::to_string(phi);
    name += ")";
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
Zd(int d)
{
    std::vector<Complex> diag(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
        diag[static_cast<std::size_t>(i)] = root_of_unity(d, i);
    }
    std::string name = "Z";
    name += std::to_string(d);
    return Gate(std::move(name), {d}, Matrix::diagonal(diag));
}

Gate
fourier(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    const Real s = 1.0 / std::sqrt(static_cast<Real>(d));
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; ++c) {
            m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
                root_of_unity(d, r * c) * s;
        }
    }
    std::string name = "H";
    name += std::to_string(d);
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
embed(const Gate& qubit_gate, int d)
{
    if (qubit_gate.arity() != 1 || qubit_gate.dims()[0] != 2) {
        throw std::invalid_argument("embed: expects a single-qubit gate");
    }
    if (d == 2) {
        return qubit_gate;
    }
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            m(r, c) = qubit_gate.matrix()(r, c);
        }
    }
    return Gate(qubit_gate.name() + "_d" + std::to_string(d), {d},
                std::move(m));
}

Gate
from_matrix(std::string name, std::vector<int> dims, Matrix m)
{
    return Gate(std::move(name), std::move(dims), std::move(m));
}

}  // namespace qd::gates
