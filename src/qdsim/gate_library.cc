#include "qdsim/gate_library.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>

namespace qd::gates {

namespace {

Complex
root_of_unity(int d, int power)
{
    const Real ang = 2 * kPi * static_cast<Real>(power) / static_cast<Real>(d);
    return Complex(std::cos(ang), std::sin(ang));
}

}  // namespace

Gate
X()
{
    return Gate("X", {2}, Matrix{{0, 1}, {1, 0}});
}

Gate
Y()
{
    return Gate("Y", {2},
                Matrix{{0, Complex(0, -1)}, {Complex(0, 1), 0}});
}

Gate
Z()
{
    return Gate("Z", {2}, Matrix{{1, 0}, {0, -1}});
}

Gate
H()
{
    const Real s = 1.0 / std::sqrt(2.0);
    return Gate("H", {2}, Matrix{{s, s}, {s, -s}});
}

Gate
S()
{
    return Gate("S", {2}, Matrix{{1, 0}, {0, Complex(0, 1)}});
}

Gate
T()
{
    return Gate("T", {2},
                Matrix{{1, 0}, {0, std::polar(1.0, kPi / 4)}});
}

Gate
P(Real phi)
{
    return Gate("P(" + std::to_string(phi) + ")", {2},
                Matrix{{1, 0}, {0, std::polar(1.0, phi)}});
}

Gate
RZ(Real phi)
{
    return Gate("RZ(" + std::to_string(phi) + ")", {2},
                Matrix{{std::polar(1.0, -phi / 2), 0},
                       {0, std::polar(1.0, phi / 2)}});
}

Gate
Xpow(Real t)
{
    // X^t = H P(pi t) H up to global phase; build directly for clarity.
    const Complex a = Complex(0.5, 0) *
                      (Complex(1, 0) + std::polar(1.0, kPi * t));
    const Complex b = Complex(0.5, 0) *
                      (Complex(1, 0) - std::polar(1.0, kPi * t));
    return Gate("X^" + std::to_string(t), {2}, Matrix{{a, b}, {b, a}});
}

Gate
CNOT()
{
    return X().controlled(2, 1);
}

Gate
CZ()
{
    return Z().controlled(2, 1);
}

Gate
CCX()
{
    return X().controlled({2, 2}, {1, 1});
}

Gate
X01()
{
    return swap_levels(3, 0, 1);
}

Gate
X02()
{
    return swap_levels(3, 0, 2);
}

Gate
X12()
{
    return swap_levels(3, 1, 2);
}

Gate
Xplus1()
{
    return shift(3);
}

Gate
Xminus1()
{
    return unshift(3);
}

Gate
Z3()
{
    return Zd(3);
}

Gate
H3()
{
    return fourier(3);
}

Gate
shift(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c) {
        m(static_cast<std::size_t>((c + 1) % d),
          static_cast<std::size_t>(c)) = Complex(1, 0);
    }
    const std::string name = d == 3 ? "X+1" : "X+1(d=" + std::to_string(d) + ")";
    return Gate(name, {d}, std::move(m));
}

Gate
unshift(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c) {
        m(static_cast<std::size_t>((c + d - 1) % d),
          static_cast<std::size_t>(c)) = Complex(1, 0);
    }
    const std::string name = d == 3 ? "X-1" : "X-1(d=" + std::to_string(d) + ")";
    return Gate(name, {d}, std::move(m));
}

Gate
swap_levels(int d, int a, int b)
{
    if (a == b || a >= d || b >= d || a < 0 || b < 0) {
        throw std::invalid_argument("swap_levels: bad levels");
    }
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    m(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) = 0;
    m(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) = 0;
    m(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = 1;
    m(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) = 1;
    // "X01" etc. name the qutrit gates from the paper; other dimensions
    // carry an explicit suffix so names are unique IR identifiers (the same
    // convention as shift/unshift above).
    std::string name = "X";
    name += std::to_string(a);
    name += std::to_string(b);
    if (d != 3) {
        name += "(d=" + std::to_string(d) + ")";
    }
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
phase_level(int d, int level, Real phi)
{
    if (level < 0 || level >= d) {
        throw std::invalid_argument("phase_level: level out of range");
    }
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    m(static_cast<std::size_t>(level), static_cast<std::size_t>(level)) =
        std::polar(1.0, phi);
    std::string name = "P";
    name += std::to_string(level);
    name += "(";
    name += std::to_string(phi);
    name += ")";
    // Same uniqueness convention as swap_levels: qutrit names are bare,
    // other dimensions are suffixed so the name is a stable IR identifier.
    if (d != 3) {
        name += "(d=" + std::to_string(d) + ")";
    }
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
Zd(int d)
{
    std::vector<Complex> diag(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) {
        diag[static_cast<std::size_t>(i)] = root_of_unity(d, i);
    }
    std::string name = "Z";
    name += std::to_string(d);
    return Gate(std::move(name), {d}, Matrix::diagonal(diag));
}

Gate
fourier(int d)
{
    Matrix m(static_cast<std::size_t>(d), static_cast<std::size_t>(d));
    const Real s = 1.0 / std::sqrt(static_cast<Real>(d));
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; ++c) {
            m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
                root_of_unity(d, r * c) * s;
        }
    }
    std::string name = "H";
    name += std::to_string(d);
    return Gate(std::move(name), {d}, std::move(m));
}

Gate
embed(const Gate& qubit_gate, int d)
{
    if (qubit_gate.arity() != 1 || qubit_gate.dims()[0] != 2) {
        throw std::invalid_argument("embed: expects a single-qubit gate");
    }
    if (d == 2) {
        return qubit_gate;
    }
    Matrix m = Matrix::identity(static_cast<std::size_t>(d));
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            m(r, c) = qubit_gate.matrix()(r, c);
        }
    }
    return Gate(qubit_gate.name() + "_d" + std::to_string(d), {d},
                std::move(m));
}

Gate
from_matrix(std::string name, std::vector<int> dims, Matrix m)
{
    return Gate(std::move(name), std::move(dims), std::move(m));
}

// ------------------------------------------------------------- registry ---

namespace {

/** Bitwise equality: identical names, dims, and matrix bit patterns. */
bool
same_gate(const Gate& a, const Gate& b)
{
    if (a.name() != b.name() || a.dims() != b.dims()) {
        return false;
    }
    const Matrix& ma = a.matrix();
    const Matrix& mb = b.matrix();
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) {
        return false;
    }
    return std::memcmp(ma.data().data(), mb.data().data(),
                       ma.data().size() * sizeof(Complex)) == 0;
}

using Factory = Gate (*)();

/** Zero-parameter families, keyed by family name (== C++ builder name). */
const std::map<std::string, Factory>&
fixed_families()
{
    static const std::map<std::string, Factory> kTable = {
        {"X", X},         {"Y", Y},           {"Z", Z},
        {"H", H},         {"S", S},           {"T", T},
        {"CNOT", CNOT},   {"CZ", CZ},         {"CCX", CCX},
        {"X01", X01},     {"X02", X02},       {"X12", X12},
        {"Xplus1", Xplus1}, {"Xminus1", Xminus1},
        {"Z3", Z3},       {"H3", H3},
    };
    return kTable;
}

/** gate-name -> family for the fixed table (names differ for controls). */
const std::map<std::string, std::string>&
fixed_by_gate_name()
{
    static const std::map<std::string, std::string> kTable = [] {
        std::map<std::string, std::string> t;
        for (const auto& [family, factory] : fixed_families()) {
            t.emplace(factory().name(), family);
        }
        return t;
    }();
    return kTable;
}

constexpr const char* kDagger = "†";  // 3 bytes in UTF-8

/** Parses the leading "C[v0][v1]..." run; returns values + remainder. */
bool
parse_control_prefix(const std::string& name, std::vector<int>& values,
                     std::string& rest)
{
    if (name.size() < 4 || name[0] != 'C' || name[1] != '[') {
        return false;
    }
    std::size_t i = 1;
    while (i < name.size() && name[i] == '[') {
        const std::size_t close = name.find(']', i + 1);
        if (close == std::string::npos || close == i + 1) {
            return false;
        }
        int v = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (name[j] < '0' || name[j] > '9') {
                return false;
            }
            v = v * 10 + (name[j] - '0');
        }
        values.push_back(v);
        i = close + 1;
    }
    if (i >= name.size()) {
        return false;  // controls with no inner gate name
    }
    rest = name.substr(i);
    return true;
}

std::optional<GateSpec>
wrap_if_match(const Gate& gate, GateSpec spec)
{
    try {
        if (same_gate(build_gate(spec, gate.dims()), gate)) {
            return spec;
        }
    } catch (const std::invalid_argument&) {
        // A candidate that cannot even be built is simply not a match.
    }
    return std::nullopt;
}

std::shared_ptr<const GateSpec>
boxed(GateSpec spec)
{
    return std::make_shared<const GateSpec>(std::move(spec));
}

}  // namespace

bool
registry_has_family(const std::string& family)
{
    if (fixed_families().count(family) != 0) {
        return true;
    }
    static const std::vector<std::string> kParametric = {
        "P",     "RZ",          "Xpow",        "shift",   "unshift",
        "Zd",    "fourier",     "swap_levels", "phase_level",
        "embed", "controlled",  "inverse",
    };
    return std::find(kParametric.begin(), kParametric.end(), family) !=
           kParametric.end();
}

std::vector<std::string>
registry_families()
{
    std::vector<std::string> out;
    for (const auto& [family, factory] : fixed_families()) {
        (void)factory;
        out.push_back(family);
    }
    for (const char* f : {"P", "RZ", "Xpow", "shift", "unshift", "Zd",
                          "fourier", "swap_levels", "phase_level", "embed",
                          "controlled", "inverse"}) {
        out.emplace_back(f);
    }
    std::sort(out.begin(), out.end());
    return out;
}

Gate
build_gate(const GateSpec& spec, const std::vector<int>& operand_dims)
{
    const auto need = [&spec](bool ok, const char* what) {
        if (!ok) {
            throw std::invalid_argument("gate family '" + spec.family +
                                        "': " + what);
        }
    };
    if (const auto it = fixed_families().find(spec.family);
        it != fixed_families().end()) {
        need(spec.iparams.empty() && spec.rparams.empty() && !spec.base,
             "takes no parameters");
        return it->second();
    }
    if (spec.family == "P" || spec.family == "RZ" || spec.family == "Xpow") {
        need(spec.rparams.size() == 1 && spec.iparams.empty() && !spec.base,
             "expects exactly one real parameter");
        const Real r = spec.rparams[0];
        return spec.family == "P" ? P(r) : spec.family == "RZ" ? RZ(r)
                                                               : Xpow(r);
    }
    if (spec.family == "inverse") {
        need(static_cast<bool>(spec.base) && spec.iparams.empty() &&
                 spec.rparams.empty(),
             "expects a base gate");
        return build_gate(*spec.base, operand_dims).inverse();
    }
    if (spec.family == "controlled") {
        need(static_cast<bool>(spec.base), "expects a base gate");
        const std::size_t k = spec.iparams.size();
        need(k >= 1 && k < operand_dims.size() && spec.rparams.empty(),
             "control count must be in [1, arity)");
        const std::vector<int> control_dims(operand_dims.begin(),
                                            operand_dims.begin() +
                                                static_cast<long>(k));
        const std::vector<int> inner_dims(operand_dims.begin() +
                                              static_cast<long>(k),
                                          operand_dims.end());
        const Gate inner = build_gate(*spec.base, inner_dims);
        // Gate::controlled validates value ranges against control_dims.
        return inner.controlled(control_dims, spec.iparams);
    }
    // Remaining families read the qudit dimension from the operand wire.
    need(!operand_dims.empty(), "needs at least one operand wire");
    const int d = operand_dims[0];
    if (spec.family == "embed") {
        need(static_cast<bool>(spec.base) && spec.iparams.empty() &&
                 spec.rparams.empty(),
             "expects a base qubit gate");
        return embed(build_gate(*spec.base, {2}), d);
    }
    need(!spec.base, "takes no base gate");
    if (spec.family == "shift" || spec.family == "unshift" ||
        spec.family == "Zd" || spec.family == "fourier") {
        need(spec.iparams.empty() && spec.rparams.empty(),
             "takes no parameters");
        return spec.family == "shift"     ? shift(d)
               : spec.family == "unshift" ? unshift(d)
               : spec.family == "Zd"      ? Zd(d)
                                          : fourier(d);
    }
    if (spec.family == "swap_levels") {
        need(spec.iparams.size() == 2 && spec.rparams.empty(),
             "expects two integer levels");
        // swap_levels validates the levels against d itself.
        return swap_levels(d, spec.iparams[0], spec.iparams[1]);
    }
    if (spec.family == "phase_level") {
        need(spec.iparams.size() == 1 && spec.rparams.size() == 1,
             "expects one level and one angle");
        return phase_level(d, spec.iparams[0], spec.rparams[0]);
    }
    throw std::invalid_argument("unknown gate family '" + spec.family + "'");
}

std::optional<GateSpec>
recognize_gate(const Gate& gate)
{
    const std::string& name = gate.name();
    const std::vector<int>& dims = gate.dims();

    // 1. Fixed gates, matched by their (unique) gate names.
    if (const auto it = fixed_by_gate_name().find(name);
        it != fixed_by_gate_name().end()) {
        if (auto spec = wrap_if_match(gate, GateSpec{it->second, {}, {}, {}})) {
            return spec;
        }
    }

    // 2. Inverse: "...†" round-trips exactly because dagger is an exact
    // elementwise conjugate-transpose (involutive bitwise).
    if (name.size() > 3 &&
        name.compare(name.size() - 3, 3, kDagger) == 0) {
        const Gate base_gate(name.substr(0, name.size() - 3), dims,
                             gate.matrix().dagger());
        if (auto base = recognize_gate(base_gate)) {
            if (auto spec = wrap_if_match(
                    gate, GateSpec{"inverse", {}, {}, boxed(*base)})) {
                return spec;
            }
        }
    }

    // 3. Controlled: peel the "C[v]..." prefix, recognize the active block.
    {
        std::vector<int> values;
        std::string rest;
        if (parse_control_prefix(name, values, rest) &&
            values.size() < dims.size()) {
            const std::size_t k = values.size();
            std::size_t ctrl_block = 1;
            bool in_range = true;
            for (std::size_t i = 0; i < k; ++i) {
                in_range = in_range && values[i] < dims[i];
                ctrl_block *= static_cast<std::size_t>(dims[i]);
            }
            if (in_range) {
                const std::size_t inner_n =
                    static_cast<std::size_t>(gate.block_size()) / ctrl_block;
                std::size_t active = 0;
                for (std::size_t i = 0; i < k; ++i) {
                    active = active * static_cast<std::size_t>(dims[i]) +
                             static_cast<std::size_t>(values[i]);
                }
                Matrix inner_m(inner_n, inner_n);
                for (std::size_t r = 0; r < inner_n; ++r) {
                    for (std::size_t c = 0; c < inner_n; ++c) {
                        inner_m(r, c) = gate.matrix()(active * inner_n + r,
                                                      active * inner_n + c);
                    }
                }
                const std::vector<int> inner_dims(
                    dims.begin() + static_cast<long>(k), dims.end());
                if (auto base = recognize_gate(
                        Gate(rest, inner_dims, std::move(inner_m)))) {
                    if (auto spec = wrap_if_match(
                            gate,
                            GateSpec{"controlled", values, {}, boxed(*base)})) {
                        return spec;
                    }
                }
            }
        }
    }

    if (gate.arity() != 1) {
        return std::nullopt;
    }
    const int d = dims[0];

    // 4. Embedded qubit gates: "<base>_dN" with the 2x2 block top-left.
    const std::string embed_suffix = "_d" + std::to_string(d);
    if (d > 2 && name.size() > embed_suffix.size() &&
        name.compare(name.size() - embed_suffix.size(), embed_suffix.size(),
                     embed_suffix) == 0) {
        Matrix top(2, 2);
        for (std::size_t r = 0; r < 2; ++r) {
            for (std::size_t c = 0; c < 2; ++c) {
                top(r, c) = gate.matrix()(r, c);
            }
        }
        if (auto base = recognize_gate(
                Gate(name.substr(0, name.size() - embed_suffix.size()), {2},
                     std::move(top)))) {
            if (auto spec = wrap_if_match(
                    gate, GateSpec{"embed", {}, {}, boxed(*base)})) {
                return spec;
            }
        }
    }

    // 5. Structural single-qudit families (dimension from the wire).
    for (const char* family : {"shift", "unshift", "Zd", "fourier"}) {
        if (auto spec = wrap_if_match(gate, GateSpec{family, {}, {}, {}})) {
            return spec;
        }
    }
    for (int a = 0; a < d; ++a) {
        for (int b = a + 1; b < d; ++b) {
            if (auto spec = wrap_if_match(
                    gate, GateSpec{"swap_levels", {a, b}, {}, {}})) {
                return spec;
            }
        }
    }

    // 6. Parametric diagonals / roots: recover the angle analytically and
    // keep the spec only when the rebuild is bitwise identical (atan2 of a
    // rounded sin/cos pair can land one ulp off; the raw-matrix fallback
    // stays exact in that case).
    if (d == 2) {
        const Complex e11 = gate.matrix()(1, 1);
        const Real phi = std::atan2(e11.imag(), e11.real());
        if (auto spec = wrap_if_match(gate, GateSpec{"P", {}, {phi}, {}})) {
            return spec;
        }
        if (auto spec = wrap_if_match(
                gate, GateSpec{"RZ", {}, {2 * phi}, {}})) {
            return spec;
        }
        const Complex a = gate.matrix()(0, 0);
        // Xpow(t): diagonal entry a = (1 + e^{i pi t}) / 2.
        const Complex e = Complex(2, 0) * a - Complex(1, 0);
        const Real t = std::atan2(e.imag(), e.real()) / kPi;
        if (auto spec = wrap_if_match(gate, GateSpec{"Xpow", {}, {t}, {}})) {
            return spec;
        }
    }
    if (gate.is_diagonal_gate()) {
        for (int level = 0; level < d; ++level) {
            const Complex v = gate.matrix()(static_cast<std::size_t>(level),
                                            static_cast<std::size_t>(level));
            if (v == Complex(1, 0)) {
                continue;
            }
            const Real phi = std::atan2(v.imag(), v.real());
            if (auto spec = wrap_if_match(
                    gate, GateSpec{"phase_level", {level}, {phi}, {}})) {
                return spec;
            }
        }
    }
    return std::nullopt;
}

}  // namespace qd::gates
