#include "qdsim/obs/trace.h"

#if QD_OBS_BUILD

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <tuple>

namespace qd::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_tracing{false};

/** Epoch is only written inside trace_begin() while g_tracing is false,
 *  and only read by threads that observed g_tracing == true afterwards
 *  (release/acquire pair on g_tracing orders the accesses). */
Clock::time_point g_epoch;

struct ThreadBuffer {
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;
};

struct TraceRegistry {
    std::mutex mu;
    std::vector<ThreadBuffer*> live;
    std::vector<TraceEvent> retired;
    std::uint32_t next_tid = 1;
};

TraceRegistry&
registry()
{
    static TraceRegistry* r = new TraceRegistry();
    return *r;
}

struct TlsBuffer {
    ThreadBuffer buf;

    TlsBuffer()
    {
        TraceRegistry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        buf.tid = r.next_tid++;
        r.live.push_back(&buf);
    }

    ~TlsBuffer()
    {
        TraceRegistry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.retired.insert(r.retired.end(),
                         std::make_move_iterator(buf.events.begin()),
                         std::make_move_iterator(buf.events.end()));
        for (std::size_t i = 0; i < r.live.size(); ++i) {
            if (r.live[i] == &buf) {
                r.live.erase(r.live.begin() +
                             static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    }
};

ThreadBuffer&
tls_buffer()
{
    thread_local TlsBuffer holder;
    return holder.buf;
}

double
now_us()
{
    return std::chrono::duration<double, std::micro>(Clock::now() - g_epoch)
        .count();
}

void
append_escaped(std::string& out, const std::string& s)
{
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') {
            out.push_back('\\');
        }
        if (static_cast<unsigned char>(ch) >= 0x20) {
            out.push_back(ch);
        }
    }
}

}  // namespace

bool
tracing() noexcept
{
    return g_tracing.load(std::memory_order_acquire);
}

void
trace_begin()
{
    TraceRegistry& r = registry();
    {
        const std::lock_guard<std::mutex> lock(r.mu);
        g_tracing.store(false, std::memory_order_release);
        r.retired.clear();
        for (ThreadBuffer* b : r.live) {
            b->events.clear();
            b->seq = 0;
        }
        g_epoch = Clock::now();
    }
    g_tracing.store(true, std::memory_order_release);
}

std::vector<TraceEvent>
trace_end()
{
    g_tracing.store(false, std::memory_order_release);
    TraceRegistry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::vector<TraceEvent> out = std::move(r.retired);
    r.retired.clear();
    for (ThreadBuffer* b : r.live) {
        out.insert(out.end(),
                   std::make_move_iterator(b->events.begin()),
                   std::make_move_iterator(b->events.end()));
        b->events.clear();
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return std::tie(a.ts_us, a.tid, a.seq) <
                                std::tie(b.ts_us, b.tid, b.seq);
                     });
    return out;
}

bool
write_chrome_trace(const std::vector<TraceEvent>& events,
                   const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    std::string line;
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        line.clear();
        line += "{\"name\":\"";
        append_escaped(line, e.name);
        line += "\",\"cat\":\"";
        append_escaped(line, e.cat);
        line += "\",\"ph\":\"X\",\"pid\":1";
        char num[96];
        std::snprintf(num, sizeof(num), ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                      e.tid, e.ts_us, e.dur_us);
        line += num;
        if (!e.args.empty()) {
            line += ",\"args\":{";
            for (std::size_t k = 0; k < e.args.size(); ++k) {
                if (k != 0) {
                    line += ',';
                }
                line += '"';
                append_escaped(line, e.args[k].key);
                std::snprintf(num, sizeof(num), "\":%lld",
                              static_cast<long long>(e.args[k].value));
                line += num;
            }
            line += '}';
        }
        line += '}';
        if (i + 1 != events.size()) {
            line += ',';
        }
        line += '\n';
        std::fputs(line.c_str(), f);
    }
    std::fputs("]\n", f);
    return std::fclose(f) == 0;
}

ScopedSpan::ScopedSpan(const char* cat, const char* name)
{
    if (!tracing()) {
        return;
    }
    live_ = true;
    cat_ = cat;
    name_ = name;
    start_us_ = now_us();
}

ScopedSpan::ScopedSpan(const char* cat, std::string name)
{
    if (!tracing()) {
        return;
    }
    live_ = true;
    cat_ = cat;
    name_ = std::move(name);
    start_us_ = now_us();
}

void
ScopedSpan::arg(const char* key, std::int64_t value)
{
    if (live_) {
        args_.push_back(TraceArg{key, value});
    }
}

ScopedSpan::~ScopedSpan()
{
    if (!live_) {
        return;
    }
    const double end_us = now_us();
    ThreadBuffer& buf = tls_buffer();
    TraceEvent e;
    e.name = std::move(name_);
    e.cat = cat_;
    e.ts_us = start_us_;
    e.dur_us = end_us - start_us_;
    e.tid = buf.tid;
    e.seq = buf.seq++;
    e.args = std::move(args_);
    buf.events.push_back(std::move(e));
}

}  // namespace qd::obs

#endif  // QD_OBS_BUILD
