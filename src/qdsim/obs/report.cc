#include "qdsim/obs/report.h"

#include <cstdio>

namespace qd::obs {

namespace {

constexpr const char* kClassNames[6] = {
    "permutation", "diagonal", "monomial", "single_wire", "controlled",
    "dense",
};

}  // namespace

std::array<std::uint64_t, 6>
SimReport::kernel_class_totals() const
{
    std::array<std::uint64_t, 6> totals{};
    for (std::size_t cls = 0; cls < 6; ++cls) {
        const auto ss = static_cast<std::size_t>(Counter::kSsPermutation);
        const auto bat = static_cast<std::size_t>(Counter::kBatPermutation);
        totals[cls] = counters.v[ss + cls] + counters.v[bat + cls];
    }
    return totals;
}

double
SimReport::plan_cache_hit_rate() const
{
    const std::uint64_t hits = counters[Counter::kPlanCacheHits];
    const std::uint64_t misses = counters[Counter::kPlanCacheMisses];
    if (hits + misses == 0) {
        return 1.0;
    }
    return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::vector<std::pair<std::string, std::uint64_t>>
SimReport::metrics() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(kNumCounters + 6);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        out.emplace_back(
            std::string("obs_") + counter_name(static_cast<Counter>(i)),
            counters.v[i]);
    }
    const auto totals = kernel_class_totals();
    for (std::size_t cls = 0; cls < 6; ++cls) {
        out.emplace_back(std::string("obs_kernel_") + kClassNames[cls],
                         totals[cls]);
    }
    return out;
}

std::string
SimReport::to_string() const
{
    std::string out = "SimReport\n";
    char line[128];
    for (const auto& [name, value] : metrics()) {
        if (value == 0) {
            continue;
        }
        std::snprintf(line, sizeof(line), "  %-28s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        out += line;
    }
    std::snprintf(line, sizeof(line), "  %-28s %.6f\n", "obs_cache_hit_rate",
                  plan_cache_hit_rate());
    out += line;
    return out;
}

std::string
SimReport::to_json() const
{
    std::string out = "{";
    char buf[128];
    bool first = true;
    for (const auto& [name, value] : metrics()) {
        std::snprintf(buf, sizeof(buf), "%s\n  \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      static_cast<unsigned long long>(value));
        out += buf;
        first = false;
    }
    std::snprintf(buf, sizeof(buf), "%s\n  \"obs_cache_hit_rate\": %.6f\n}",
                  first ? "" : ",", plan_cache_hit_rate());
    out += buf;
    return out;
}

SimReport
report_snapshot()
{
    SimReport rep;
    rep.counters = counters_snapshot();
    return rep;
}

}  // namespace qd::obs
