/**
 * @file report.h
 * SimReport: a merged snapshot of the instrumentation counters with the
 * derived metrics the benches gate on, serialisable both human-readable
 * and as flat JSON matching the BENCH_*.json shape (every key prefixed
 * "obs_") so scripts/compare_bench.py can track observability metrics
 * alongside speedups.
 */
#ifndef QDSIM_OBS_REPORT_H
#define QDSIM_OBS_REPORT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qdsim/obs/counters.h"

namespace qd::obs {

struct SimReport {
    CounterSnapshot counters;

    /** Kernel-class totals summed across the single-shot and batched zoos
     *  (batched counters advance by lane count, so these totals are
     *  invariant under the batch width). Order: permutation, diagonal,
     *  monomial, single_wire, controlled, dense. */
    std::array<std::uint64_t, 6> kernel_class_totals() const;

    /** hits / (hits + misses); 1.0 when the cache was never consulted. */
    double plan_cache_hit_rate() const;

    /**
     * Flat metric list in emission order: every raw counter as
     * ("obs_<counter_name>", value) followed by the derived
     * ("obs_kernel_<class>", total) entries. cache_hit_rate is the only
     * non-integer metric and is exposed separately.
     */
    std::vector<std::pair<std::string, std::uint64_t>> metrics() const;

    /** Aligned human-readable table (only non-zero counters, plus the
     *  derived metrics). */
    std::string to_string() const;

    /** Flat JSON object: {"obs_...": N, ..., "obs_cache_hit_rate": x}. */
    std::string to_json() const;
};

/** Snapshot of the current counter totals. With QD_OBS_BUILD=0 this
 *  returns an all-zero report. */
SimReport report_snapshot();

}  // namespace qd::obs

#endif  // QDSIM_OBS_REPORT_H
