/**
 * @file trace.h
 * RAII scoped spans emitting Chrome trace-event JSON.
 *
 * Tracing is gated separately from the counters: spans buffer events only
 * between trace_begin() and trace_end(), so enabling counters for a long
 * run never accumulates an unbounded event log. Events land in per-thread
 * buffers (no lock on the hot path); trace_end() merges them and sorts by
 * (timestamp, tid, sequence) for a stable file layout.
 *
 * The output of write_chrome_trace() is a plain JSON array of complete
 * ("ph":"X") events — the legacy Chrome trace-event format accepted by
 * chrome://tracing and Perfetto's trace processor.
 *
 * With QD_PROFILE=OFF (QD_OBS_BUILD=0) every entry point is an inline
 * no-op and ScopedSpan is an empty object.
 */
#ifndef QDSIM_OBS_TRACE_H
#define QDSIM_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qdsim/obs/counters.h"  // for QD_OBS_BUILD default

namespace qd::obs {

/** One integer-valued span annotation ("args" in the trace format). */
struct TraceArg {
    const char* key;
    std::int64_t value;
};

/** One complete span, timestamps in microseconds since trace_begin(). */
struct TraceEvent {
    std::string name;
    const char* cat = "";
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;  ///< per-thread emission order (sort tiebreak)
    std::vector<TraceArg> args;
};

#if QD_OBS_BUILD

/** True between trace_begin() and trace_end(). */
bool tracing() noexcept;

/** Drops any buffered events, re-arms the clock epoch, starts buffering. */
void trace_begin();

/** Stops buffering and returns every event, merged and stably ordered by
 *  (ts_us, tid, seq). Safe to call when not tracing (returns empty). */
std::vector<TraceEvent> trace_end();

/** Serialises events as a Chrome trace-event JSON array. Returns false if
 *  the file could not be written. */
bool write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path);

/**
 * Scoped span: measures from construction to destruction and appends one
 * "X" event to the calling thread's buffer. When tracing is off the
 * constructor is a relaxed load and a branch; name strings are only copied
 * while tracing.
 */
class ScopedSpan {
  public:
    ScopedSpan(const char* cat, const char* name);
    ScopedSpan(const char* cat, std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Attaches an integer annotation (no-op when tracing is off). */
    void arg(const char* key, std::int64_t value);

  private:
    bool live_ = false;
    double start_us_ = 0.0;
    const char* cat_ = "";
    std::string name_;
    std::vector<TraceArg> args_;
};

#else  // !QD_OBS_BUILD

inline bool tracing() noexcept { return false; }
inline void trace_begin() {}
inline std::vector<TraceEvent> trace_end() { return {}; }
inline bool write_chrome_trace(const std::vector<TraceEvent>&,
                               const std::string&) {
    return false;
}

class ScopedSpan {
  public:
    ScopedSpan(const char*, const char*) {}
    ScopedSpan(const char*, std::string) {}
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    void arg(const char*, std::int64_t) {}
};

#endif  // QD_OBS_BUILD

}  // namespace qd::obs

#endif  // QDSIM_OBS_TRACE_H
