/**
 * @file counters.h
 * Per-thread, deterministically-mergeable instrumentation counters.
 *
 * Every hook site in the engines calls obs::count(...) (usually under one
 * obs::enabled() check so disabled builds pay a single relaxed atomic load
 * plus a predictable branch). Counts land in a thread-local block, so hook
 * sites inside OpenMP or std::thread worker loops never serialize on a
 * shared cache line; a snapshot merges the per-thread blocks in registry
 * order. Because every counter is an unsigned integer and integer addition
 * is associative and commutative, the merged totals are bitwise identical
 * regardless of thread count or merge order — the "ordered merge" is
 * trivially deterministic.
 *
 * Thread-safety of the hot path: each slot is a std::atomic<uint64_t>
 * written ONLY by its owning thread with a relaxed load+add+store (plain
 * mov/add/mov on x86 — no lock prefix), while snapshot/reset use relaxed
 * loads/stores from other threads. A concurrent reader and a single writer
 * on an atomic object is not a data race, so the instrumented build is
 * clean under ThreadSanitizer. reset_counters() while hooks are firing is
 * allowed (no UB) but may lose in-flight increments; call it quiescent for
 * exact numbers.
 *
 * QD_PROFILE=OFF (CMake) defines QD_OBS_BUILD=0 and compiles every hook in
 * this header to an empty inline function.
 */
#ifndef QDSIM_OBS_COUNTERS_H
#define QDSIM_OBS_COUNTERS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef QD_OBS_BUILD
#define QD_OBS_BUILD 1
#endif

namespace qd::obs {

/**
 * Everything the instrumentation layer tracks. Kernel-dispatch counts are
 * kept per zoo: the single-shot counters advance by 1 per apply_op, the
 * batched counters by the lane count per apply_op_batched, so the per-class
 * SUM across the two zoos is invariant under the batch width (lanes are
 * bitwise equal to unbatched shots by the batched-engine contract).
 */
enum class Counter : unsigned {
    // Single-shot kernel zoo (exec/kernels.cc), one per dispatch.
    kSsPermutation = 0,
    kSsDiagonal,
    kSsMonomial,
    kSsSingleWire,  ///< unrolled d=2 / d=3 single-wire kernels
    kSsControlled,
    kSsDense,
    // Batched kernel zoo (exec/batched_kernels.cc), LANES per dispatch.
    kBatPermutation,
    kBatDiagonal,
    kBatMonomial,
    kBatSingleWire,
    kBatControlled,
    kBatDense,
    kBatDispatches,  ///< apply_op_batched calls (NOT batch-invariant)
    // Superoperator conjugations by class (exec/superop.cc).
    kSuperDiagonal,
    kSuperMonomial,
    kSuperControlled,
    kSuperDense,
    // PlanCache (exec/apply_plan.cc).
    kPlanCacheHits,
    kPlanCacheMisses,
    kPlanCacheInserts,  ///< explicit PlanCache::put seeds
    kPlanBuilds,        ///< make_apply_plan calls (cache misses + uncached)
    // Fusion (exec/fusion.cc).
    kFusionOpsIn,
    kFusionBlocksOut,
    kFusionFusedGroups,      ///< groups with >= 2 members
    kFusionCapTruncations,   ///< merges rejected by a fusion block cap
    kFusionCostAccepted,     ///< stage-2 union merges the cost model accepted
    kFusionCostRejected,     ///< stage-2 candidates rejected by the cost model
    // Compile service (exec/compile_service.cc).
    kServiceHits,        ///< artifact-cache hits (compile + verify skipped)
    kServiceMisses,      ///< artifact-cache misses (fresh compile)
    kServiceEvictions,   ///< LRU evictions past the configured capacity
    kServiceRejects,     ///< admissions rejected by the verify gate
    // Trajectory divergence events (noise/trajectory.cc).
    kTrajShots,
    kTrajBatches,           ///< batched shot groups (NOT batch-invariant)
    kTrajGateErrorDraws,    ///< per-shot gate-error lotteries tested
    kTrajGateErrorsFired,   ///< lotteries that drew an error operator
    kTrajDampingJumps,      ///< amplitude-damping jump applications
    kTrajRareBranches,      ///< fused idle-damping rare-branch resolutions
    kTrajLaneExtracts,      ///< batched lanes spilled to single-shot code
    // Serving front-end (src/serve/): the qd_served daemon and the
    // stdin single-client loop share these through the RunRequest →
    // RunResult facade.
    kServeConnections,   ///< client connections accepted (stdin loop = 1)
    kServeJobsAccepted,  ///< submit frames admitted to the run queue
    kServeJobsRejected,  ///< protocol/quota/decode/admission rejections
    kServeJobsFailed,    ///< admitted jobs that threw during execution
    kServeJobsOk,        ///< admitted jobs that completed successfully
    kServeWarmHits,      ///< jobs served from a warm CompiledArtifact
    // Work estimate (complex multiply-adds ~ 8 real flops each).
    kEstimatedFlops,

    kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/** Stable snake_case identifier, used for report/JSON keys. */
const char* counter_name(Counter c) noexcept;

/** A merged point-in-time view of every counter. */
struct CounterSnapshot {
    std::array<std::uint64_t, kNumCounters> v{};

    std::uint64_t operator[](Counter c) const {
        return v[static_cast<std::size_t>(c)];
    }
    bool operator==(const CounterSnapshot& o) const { return v == o.v; }
};

#if QD_OBS_BUILD

namespace detail {

/** One thread's counter slots. Owner-only writers, relaxed everywhere. */
struct CounterBlock {
    std::array<std::atomic<std::uint64_t>, kNumCounters> v{};
};

/** The calling thread's block (registered on first use, merged into a
 *  retired accumulator when the thread exits). */
CounterBlock& tls_block();

extern std::atomic<bool> g_enabled;

}  // namespace detail

/** Runtime master switch. Initialised from the QD_OBS environment variable
 *  ("1"/"on"/"true" enable) so tests and CI can instrument without code
 *  changes; toggle with set_enabled(). */
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/** Adds `n` to counter `c` for the calling thread. Checks enabled()
 *  internally; hook sites that touch several counters (or compute an
 *  argument) should hoist their own enabled() check. */
inline void count(Counter c, std::uint64_t n = 1) noexcept {
    if (!enabled()) {
        return;
    }
    auto& slot = detail::tls_block().v[static_cast<std::size_t>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

/** Unconditional variant for sites already under an enabled() check. */
inline void count_unchecked(Counter c, std::uint64_t n = 1) noexcept {
    auto& slot = detail::tls_block().v[static_cast<std::size_t>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

/** Merged totals across every live and retired thread block. */
CounterSnapshot counters_snapshot();

/** Zeroes every slot (live blocks and the retired accumulator). */
void reset_counters();

#else  // !QD_OBS_BUILD — hooks compile to nothing.

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void count_unchecked(Counter, std::uint64_t = 1) noexcept {}
inline CounterSnapshot counters_snapshot() { return {}; }
inline void reset_counters() {}

#endif  // QD_OBS_BUILD

}  // namespace qd::obs

#endif  // QDSIM_OBS_COUNTERS_H
