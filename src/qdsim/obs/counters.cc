#include "qdsim/obs/counters.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace qd::obs {

const char*
counter_name(Counter c) noexcept
{
    static constexpr const char* kNames[kNumCounters] = {
        "ss_permutation",
        "ss_diagonal",
        "ss_monomial",
        "ss_single_wire",
        "ss_controlled",
        "ss_dense",
        "bat_permutation",
        "bat_diagonal",
        "bat_monomial",
        "bat_single_wire",
        "bat_controlled",
        "bat_dense",
        "bat_dispatches",
        "super_diagonal",
        "super_monomial",
        "super_controlled",
        "super_dense",
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_inserts",
        "plan_builds",
        "fusion_ops_in",
        "fusion_blocks_out",
        "fusion_fused_groups",
        "fusion_cap_truncations",
        "fusion_cost_accepted",
        "fusion_cost_rejected",
        "service_hits",
        "service_misses",
        "service_evictions",
        "service_rejects",
        "traj_shots",
        "traj_batches",
        "traj_gate_error_draws",
        "traj_gate_errors_fired",
        "traj_damping_jumps",
        "traj_rare_branches",
        "traj_lane_extracts",
        "serve_connections",
        "serve_jobs_accepted",
        "serve_jobs_rejected",
        "serve_jobs_failed",
        "serve_jobs_ok",
        "serve_warm_hits",
        "estimated_flops",
    };
    const auto i = static_cast<std::size_t>(c);
    return i < kNumCounters ? kNames[i] : "unknown";
}

#if QD_OBS_BUILD

namespace detail {

namespace {

/** Registry of live per-thread blocks plus the retired accumulator.
 *  Constructed on first use and intentionally leaked so thread-exit
 *  destructors running after main() can still merge safely. */
struct Registry {
    std::mutex mu;
    std::vector<CounterBlock*> live;
    std::array<std::uint64_t, kNumCounters> retired{};
};

Registry&
registry()
{
    static Registry* r = new Registry();
    return *r;
}

/** Owns a thread's block; merges it into the retired totals on exit. */
struct TlsHolder {
    CounterBlock block;

    TlsHolder()
    {
        Registry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.live.push_back(&block);
    }

    ~TlsHolder()
    {
        Registry& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            r.retired[i] += block.v[i].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < r.live.size(); ++i) {
            if (r.live[i] == &block) {
                r.live.erase(r.live.begin() +
                             static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    }
};

bool
env_enabled()
{
    const char* v = std::getenv("QD_OBS");
    if (v == nullptr) {
        return false;
    }
    return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
           std::strcmp(v, "true") == 0;
}

}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

CounterBlock&
tls_block()
{
    thread_local TlsHolder holder;
    return holder.block;
}

}  // namespace detail

void
set_enabled(bool on) noexcept
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

CounterSnapshot
counters_snapshot()
{
    auto& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    CounterSnapshot snap;
    snap.v = r.retired;
    for (const detail::CounterBlock* block : r.live) {
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            snap.v[i] += block->v[i].load(std::memory_order_relaxed);
        }
    }
    return snap;
}

void
reset_counters()
{
    auto& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.retired.fill(0);
    for (detail::CounterBlock* block : r.live) {
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            block->v[i].store(0, std::memory_order_relaxed);
        }
    }
}

#endif  // QD_OBS_BUILD

}  // namespace qd::obs
