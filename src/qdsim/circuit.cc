#include "qdsim/circuit.h"

#include <algorithm>
#include <stdexcept>

#include "qdsim/moments.h"

namespace qd {

void
Circuit::append(const Gate& gate, const std::vector<int>& wires)
{
    if (gate.empty()) {
        throw std::invalid_argument("Circuit::append: empty gate");
    }
    if (static_cast<int>(wires.size()) != gate.arity()) {
        throw std::invalid_argument("Circuit::append: wire count mismatch "
                                    "for gate " + gate.name());
    }
    for (std::size_t i = 0; i < wires.size(); ++i) {
        const int w = wires[i];
        if (w < 0 || w >= dims_.num_wires()) {
            throw std::out_of_range("Circuit::append: wire out of range");
        }
        if (dims_.dim(w) != gate.dims()[i]) {
            throw std::invalid_argument(
                "Circuit::append: gate " + gate.name() + " operand " +
                std::to_string(i) + " dim " +
                std::to_string(gate.dims()[i]) + " != wire dim " +
                std::to_string(dims_.dim(w)));
        }
        for (std::size_t j = i + 1; j < wires.size(); ++j) {
            if (wires[j] == w) {
                throw std::invalid_argument(
                    "Circuit::append: duplicate wire for " + gate.name());
            }
        }
    }
    ops_.push_back(Operation{gate, wires});
}

void
Circuit::extend(const Circuit& other)
{
    if (!(other.dims_ == dims_)) {
        throw std::invalid_argument("Circuit::extend: register mismatch");
    }
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

Circuit
Circuit::inverse() const
{
    Circuit inv(dims_);
    inv.ops_.reserve(ops_.size());
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        inv.ops_.push_back(Operation{it->gate.inverse(), it->wires});
    }
    return inv;
}

Circuit::Stats
Circuit::stats() const
{
    Stats s;
    s.total_gates = ops_.size();
    for (const Operation& op : ops_) {
        switch (op.gate.arity()) {
          case 1:
            ++s.one_qudit;
            break;
          case 2:
            ++s.two_qudit;
            break;
          default:
            ++s.three_plus_qudit;
            break;
        }
    }
    s.depth = depth();
    return s;
}

std::size_t
Circuit::two_qudit_count() const
{
    std::size_t n = 0;
    for (const Operation& op : ops_) {
        if (op.gate.arity() == 2) {
            ++n;
        }
    }
    return n;
}

int
Circuit::depth() const
{
    return circuit_depth(*this);
}

std::string
Circuit::summary(const std::string& label) const
{
    const Stats s = stats();
    std::string out = label.empty() ? std::string("circuit") : label;
    out += ": width=" + std::to_string(num_wires());
    out += " gates=" + std::to_string(s.total_gates);
    out += " (1q=" + std::to_string(s.one_qudit);
    out += ", 2q=" + std::to_string(s.two_qudit);
    out += ", 3q+=" + std::to_string(s.three_plus_qudit);
    out += ") depth=" + std::to_string(s.depth);
    return out;
}

}  // namespace qd
