#include "qdsim/circuit.h"

#include <algorithm>
#include <stdexcept>

#include "qdsim/moments.h"

namespace qd {

void
Circuit::validate_op(const Gate& gate, const std::vector<int>& wires) const
{
    if (gate.empty()) {
        throw std::invalid_argument("Circuit: empty gate");
    }
    if (static_cast<int>(wires.size()) != gate.arity()) {
        throw std::invalid_argument("Circuit: wire count mismatch "
                                    "for gate " + gate.name());
    }
    for (std::size_t i = 0; i < wires.size(); ++i) {
        const int w = wires[i];
        if (w < 0 || w >= dims_.num_wires()) {
            throw std::out_of_range("Circuit: wire out of range");
        }
        if (dims_.dim(w) != gate.dims()[i]) {
            throw std::invalid_argument(
                "Circuit: gate " + gate.name() + " operand " +
                std::to_string(i) + " dim " +
                std::to_string(gate.dims()[i]) + " != wire dim " +
                std::to_string(dims_.dim(w)));
        }
        for (std::size_t j = i + 1; j < wires.size(); ++j) {
            if (wires[j] == w) {
                throw std::invalid_argument(
                    "Circuit: duplicate wire for " + gate.name());
            }
        }
    }
}

void
Circuit::append(const Gate& gate, const std::vector<int>& wires)
{
    validate_op(gate, wires);
    ops_.push_back(Operation{gate, wires});
}

void
Circuit::erase_op(std::size_t index)
{
    if (index >= ops_.size()) {
        throw std::out_of_range("Circuit::erase_op: index out of range");
    }
    ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(index));
}

void
Circuit::erase_ops(std::vector<std::size_t> indices)
{
    if (indices.empty()) {
        return;
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    if (indices.back() >= ops_.size()) {
        throw std::out_of_range("Circuit::erase_ops: index out of range");
    }
    std::vector<Operation> kept;
    kept.reserve(ops_.size() - indices.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        if (next < indices.size() && indices[next] == i) {
            ++next;
        } else {
            kept.push_back(std::move(ops_[i]));
        }
    }
    ops_ = std::move(kept);
}

void
Circuit::replace_op(std::size_t index, const Gate& gate,
                    const std::vector<int>& wires)
{
    if (index >= ops_.size()) {
        throw std::out_of_range("Circuit::replace_op: index out of range");
    }
    validate_op(gate, wires);
    ops_[index] = Operation{gate, wires};
}

void
Circuit::insert_op(std::size_t index, const Gate& gate,
                   const std::vector<int>& wires)
{
    if (index > ops_.size()) {
        throw std::out_of_range("Circuit::insert_op: index out of range");
    }
    validate_op(gate, wires);
    ops_.insert(ops_.begin() + static_cast<std::ptrdiff_t>(index),
                Operation{gate, wires});
}

void
Circuit::splice(std::size_t index, const Circuit& replacement,
                const std::vector<int>& wire_map)
{
    if (index >= ops_.size()) {
        throw std::out_of_range("Circuit::splice: index out of range");
    }
    if (static_cast<int>(wire_map.size()) != replacement.num_wires()) {
        throw std::invalid_argument(
            "Circuit::splice: wire_map size != replacement width");
    }
    for (std::size_t i = 0; i < wire_map.size(); ++i) {
        if (wire_map[i] < 0 || wire_map[i] >= dims_.num_wires()) {
            throw std::out_of_range("Circuit::splice: wire_map out of range");
        }
        for (std::size_t j = i + 1; j < wire_map.size(); ++j) {
            if (wire_map[j] == wire_map[i]) {
                throw std::invalid_argument(
                    "Circuit::splice: duplicate wire in wire_map");
            }
        }
    }
    std::vector<Operation> expanded;
    expanded.reserve(replacement.ops_.size());
    for (const Operation& op : replacement.ops_) {
        std::vector<int> wires;
        wires.reserve(op.wires.size());
        for (const int w : op.wires) {
            wires.push_back(wire_map[static_cast<std::size_t>(w)]);
        }
        validate_op(op.gate, wires);
        expanded.push_back(Operation{op.gate, std::move(wires)});
    }
    ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(index));
    ops_.insert(ops_.begin() + static_cast<std::ptrdiff_t>(index),
                std::make_move_iterator(expanded.begin()),
                std::make_move_iterator(expanded.end()));
}

Circuit
Circuit::redimensioned(
    const WireDims& new_dims,
    const std::function<Gate(const Gate&)>& adapt) const
{
    if (new_dims.num_wires() != dims_.num_wires()) {
        throw std::invalid_argument(
            "Circuit::redimensioned: wire count mismatch");
    }
    Circuit out(new_dims);
    out.ops_.reserve(ops_.size());
    // Gates are flyweights: adapt each distinct payload once.
    std::vector<std::pair<const Matrix*, Gate>> cache;
    for (const Operation& op : ops_) {
        const Matrix* key = &op.gate.matrix();
        const Gate* adapted = nullptr;
        for (const auto& [k, g] : cache) {
            if (k == key) {
                adapted = &g;
                break;
            }
        }
        if (adapted == nullptr) {
            cache.emplace_back(key, adapt(op.gate));
            adapted = &cache.back().second;
        }
        out.append(*adapted, op.wires);
    }
    return out;
}

void
Circuit::extend(const Circuit& other)
{
    if (!(other.dims_ == dims_)) {
        throw std::invalid_argument("Circuit::extend: register mismatch");
    }
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

Circuit
Circuit::inverse() const
{
    Circuit inv(dims_);
    inv.ops_.reserve(ops_.size());
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        inv.ops_.push_back(Operation{it->gate.inverse(), it->wires});
    }
    return inv;
}

Circuit::Stats
Circuit::stats() const
{
    Stats s;
    s.total_gates = ops_.size();
    for (const Operation& op : ops_) {
        switch (op.gate.arity()) {
          case 1:
            ++s.one_qudit;
            break;
          case 2:
            ++s.two_qudit;
            break;
          default:
            ++s.three_plus_qudit;
            break;
        }
    }
    s.depth = depth();
    return s;
}

std::size_t
Circuit::two_qudit_count() const
{
    std::size_t n = 0;
    for (const Operation& op : ops_) {
        if (op.gate.arity() == 2) {
            ++n;
        }
    }
    return n;
}

int
Circuit::depth() const
{
    return circuit_depth(*this);
}

std::string
Circuit::summary(const std::string& label) const
{
    const Stats s = stats();
    std::string out = label.empty() ? std::string("circuit") : label;
    out += ": width=" + std::to_string(num_wires());
    out += " gates=" + std::to_string(s.total_gates);
    out += " (1q=" + std::to_string(s.one_qudit);
    out += ", 2q=" + std::to_string(s.two_qudit);
    out += ", 3q+=" + std::to_string(s.three_plus_qudit);
    out += ") depth=" + std::to_string(s.depth);
    return out;
}

}  // namespace qd
