/**
 * @file random_state.h
 * O(d^N) Haar-random state generation (paper Section 6.2).
 *
 * Other libraries generate a Haar-random d^N x d^N unitary and truncate to a
 * column; here the column is sampled directly: i.i.d. complex Gaussians
 * followed by normalisation, which is exactly the first column of a Haar
 * unitary in distribution.
 */
#ifndef QDSIM_RANDOM_STATE_H
#define QDSIM_RANDOM_STATE_H

#include "qdsim/rng.h"
#include "qdsim/state_vector.h"

namespace qd {

/** Haar-random pure state over the full mixed-radix register. */
StateVector haar_random_state(const WireDims& dims, Rng& rng);

/**
 * Haar-random state supported on the qubit subspace: amplitudes are nonzero
 * only on basis states whose digits are all < 2. This models the paper's
 * protocol where circuit inputs and outputs are qubits and only intermediate
 * states occupy |2>.
 */
StateVector haar_random_qubit_subspace_state(const WireDims& dims, Rng& rng);

/** Haar-random unitary of dimension n via QR of a complex Ginibre matrix
 *  (test utility; used to property-test gate algebra, not in hot paths). */
Matrix haar_random_unitary(std::size_t n, Rng& rng);

}  // namespace qd

#endif  // QDSIM_RANDOM_STATE_H
