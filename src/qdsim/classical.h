/**
 * @file classical.h
 * Classical (permutation) simulation of reversible circuits.
 *
 * Paper Section 6: "We extended Cirq to allow gates to specify their action
 * on classical non-superposition input states without considering full state
 * vectors. Therefore, each classical input state can be verified in space
 * and time proportional to the circuit width." This module is that fast
 * path: it propagates a digit vector through the circuit using each gate's
 * permutation action.
 */
#ifndef QDSIM_CLASSICAL_H
#define QDSIM_CLASSICAL_H

#include <functional>
#include <vector>

#include "qdsim/circuit.h"

namespace qd {

/** True if every gate in the circuit has a classical permutation action. */
bool is_classical_circuit(const Circuit& circuit);

/**
 * Runs the circuit on a classical basis input in O(gates) time and O(width)
 * space.
 *
 * @param circuit A circuit whose gates all have permutation actions.
 * @param input   Digit per wire (0 <= digit < dim).
 * @return        Output digits.
 * @throws std::invalid_argument if a gate lacks a classical action.
 */
std::vector<int> classical_run(const Circuit& circuit,
                               std::vector<int> input);

/**
 * Exhaustively verifies a circuit against a reference function on every
 * input whose digits are below `radix` (e.g. radix=2 checks all qubit
 * inputs of a qutrit circuit, matching the paper's verification of binary
 * inputs/outputs).
 *
 * @param circuit   Circuit under test (must be classical).
 * @param radix     Number of levels per wire to enumerate.
 * @param reference Maps input digits to expected output digits.
 * @return          Empty vector on success; otherwise the first failing
 *                  input.
 */
std::vector<int> verify_exhaustive(
    const Circuit& circuit, int radix,
    const std::function<std::vector<int>(const std::vector<int>&)>&
        reference);

}  // namespace qd

#endif  // QDSIM_CLASSICAL_H
