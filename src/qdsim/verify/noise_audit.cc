#include "qdsim/verify/noise_audit.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "noise/channels.h"
#include "noise/error_placement.h"

namespace qd::verify {

namespace {

std::string
prefix(std::string_view label)
{
    return label.empty() ? std::string("channel")
                         : std::string(label) + " channel";
}

}  // namespace

void
audit_kraus(const noise::KrausChannel& channel, Report& report,
            std::string_view label, Real tol)
{
    const std::string who = prefix(label);
    if (channel.operators.empty()) {
        report.add("noise.cptp", Severity::kError, -1,
                   who + " has no Kraus operators");
        return;
    }
    const std::size_t dim = channel.operators.front().rows();
    for (const Matrix& k : channel.operators) {
        if (k.rows() != k.cols() || k.rows() != dim) {
            report.add("noise.shape", Severity::kError, -1,
                       who + " mixes operator shapes (" +
                           std::to_string(k.rows()) + "x" +
                           std::to_string(k.cols()) + " vs dim " +
                           std::to_string(dim) + ")");
            return;
        }
    }
    // Trace preservation: sum K^dagger K must be the identity.
    Matrix sum = Matrix::zero(dim, dim);
    for (const Matrix& k : channel.operators) {
        sum = sum + k.dagger() * k;
    }
    const Real distance = sum.distance(Matrix::identity(dim));
    if (distance > tol * static_cast<Real>(dim)) {
        report.add("noise.cptp", Severity::kError, -1,
                   who + " is not trace preserving: ||sum K^t K - I|| = " +
                       std::to_string(distance));
    }
}

void
audit_mixed_unitary(const noise::MixedUnitaryChannel& channel,
                    Report& report, std::string_view label, Real tol)
{
    const std::string who = prefix(label);
    if (channel.probs.size() != channel.unitaries.size()) {
        report.add("noise.shape", Severity::kError, -1,
                   who + " has " + std::to_string(channel.probs.size()) +
                       " probabilities for " +
                       std::to_string(channel.unitaries.size()) +
                       " unitaries");
        return;
    }
    Real total = 0;
    for (const Real p : channel.probs) {
        if (p < -tol || p > 1 + tol) {
            report.add("noise.probability", Severity::kError, -1,
                       who + " branch probability " + std::to_string(p) +
                           " outside [0, 1]");
        }
        total += p;
    }
    if (total > 1 + tol) {
        report.add("noise.probability", Severity::kError, -1,
                   who + " branch probabilities sum to " +
                       std::to_string(total) + " > 1");
    }
    for (std::size_t i = 0; i < channel.unitaries.size(); ++i) {
        if (!channel.unitaries[i].is_unitary(tol)) {
            report.add("noise.unitary", Severity::kError, -1,
                       who + " operator " + std::to_string(i) +
                           " is not unitary");
        }
    }
}

Report
analyze_noise(const noise::NoiseModel& model, const WireDims& dims,
              Real tol)
{
    Report report;
    const auto bad_param = [&](const std::string& message) {
        report.add("noise.probability", Severity::kError, -1,
                   "model '" + model.name + "': " + message);
    };
    if (model.p1 < 0 || model.p2 < 0) {
        bad_param("negative gate-error probability");
    }
    if (model.dt_1q < 0 || model.dt_2q < 0) {
        bad_param("negative moment duration");
    }
    for (const Real r : model.decay_rates) {
        if (r < 0) {
            bad_param("negative decay rate " + std::to_string(r));
        }
    }

    std::set<int> distinct;
    for (const int d : dims.dims()) {
        distinct.insert(d);
    }
    // Over-unity totals are a warning, not an error: the trajectory
    // sampler saturates (the identity branch vanishes), so amplified
    // stress models remain runnable — but the result no longer matches
    // the nominal per-channel probabilities, which is worth flagging.
    const auto saturated = [&](const std::string& message) {
        report.add("noise.probability", Severity::kWarning, -1,
                   "model '" + model.name + "': " + message);
    };
    for (const int d : distinct) {
        const Real total1 = model.gate_error_total_1q(d);
        if (total1 < -tol) {
            bad_param("total 1q gate error " + std::to_string(total1) +
                      " negative for d=" + std::to_string(d));
        } else if (total1 > 1 + tol) {
            saturated("total 1q gate error " + std::to_string(total1) +
                      " > 1 (sampler saturates) for d=" +
                      std::to_string(d));
        } else if (model.p1 > 0) {
            audit_mixed_unitary(
                noise::depolarizing1(d, model.per_channel_1q(d)), report,
                "depolarizing1(d=" + std::to_string(d) + ")", tol);
        }
        for (const int e : distinct) {
            if (e < d) {
                continue;
            }
            const Real total2 = model.gate_error_total_2q(d, e);
            if (total2 < -tol) {
                bad_param("total 2q gate error " + std::to_string(total2) +
                          " negative for (" + std::to_string(d) + "," +
                          std::to_string(e) + ")");
            } else if (total2 > 1 + tol) {
                saturated("total 2q gate error " + std::to_string(total2) +
                          " > 1 (sampler saturates) for (" +
                          std::to_string(d) + "," + std::to_string(e) +
                          ")");
            } else if (model.p2 > 0) {
                audit_mixed_unitary(
                    noise::depolarizing2(d, e, model.per_channel_2q(d, e)),
                    report,
                    "depolarizing2(" + std::to_string(d) + "," +
                        std::to_string(e) + ")",
                    tol);
            }
        }
    }

    if (model.has_damping()) {
        for (const Real dt : {model.dt_1q, model.dt_2q}) {
            if (dt <= 0) {
                continue;
            }
            for (const int d : distinct) {
                std::vector<Real> lambdas;
                bool in_range = true;
                for (int m = 1; m < d; ++m) {
                    const Real lm = model.lambda(m, dt);
                    in_range = in_range && lm >= -tol && lm <= 1 + tol;
                    lambdas.push_back(std::clamp<Real>(lm, 0, 1));
                }
                if (!in_range) {
                    bad_param("damping probability outside [0, 1] for d=" +
                              std::to_string(d));
                    continue;
                }
                audit_kraus(noise::amplitude_damping(d, lambdas), report,
                            "amplitude_damping(d=" + std::to_string(d) +
                                ", dt=" + std::to_string(dt) + ")",
                            tol);
            }
        }
    }
    return report;
}

void
enforce_noisy(const Circuit& circuit, const noise::NoiseModel& model,
              const exec::FusionOptions& fusion)
{
    if (!strict()) {
        return;
    }
    const std::vector<std::uint8_t> fences =
        noise::error_fences(noise::enumerate_error_sites(circuit, model));
    Options options;
    options.dead_code = false;
    options.allow_nonunitary = true;
    options.fusion = fusion;
    options.fences = fences;
    Report report = analyze(circuit, options);
    report.merge(analyze_noise(model, circuit.dims()));
    if (report.has_errors()) {
        throw VerificationError(std::move(report));
    }
}

}  // namespace qd::verify
