#include "qdsim/verify/plan_audit.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "qdsim/exec/apply_plan.h"
#include "qdsim/exec/kernels.h"

namespace qd::verify {

namespace {

using exec::ApplyPlan;
using exec::CompiledOp;
using exec::KernelKind;

std::string
wires_str(std::span<const int> wires)
{
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < wires.size(); ++i) {
        out << (i ? "," : "") << wires[i];
    }
    out << ']';
    return out.str();
}

bool
complex_close(const Complex& a, const Complex& b)
{
    return std::abs(a - b) <= kLooseTol;
}

}  // namespace

void
audit_plan(const WireDims& dims, std::span<const int> wires,
           const ApplyPlan& plan, Report& report, std::ptrdiff_t op_index)
{
    const Index size = dims.size();
    const std::string where = "plan over wires " + wires_str(wires);

    Index block = 1;
    bool wires_ok = true;
    for (const int w : wires) {
        if (w < 0 || w >= dims.num_wires()) {
            wires_ok = false;
            break;
        }
        block *= static_cast<Index>(dims.dim(w));
    }
    if (!wires_ok) {
        report.add("plan.block-mismatch", Severity::kError, op_index,
                   where + ": wire out of range for the register");
        return;
    }
    if (plan.block != block) {
        report.add("plan.block-mismatch", Severity::kError, op_index,
                   where + ": block " + std::to_string(plan.block) +
                       " != operand-dim product " + std::to_string(block));
        return;
    }
    if (plan.local_offset.size() != static_cast<std::size_t>(plan.block)) {
        report.add("plan.table-size", Severity::kError, op_index,
                   where + ": local_offset table has " +
                       std::to_string(plan.local_offset.size()) +
                       " entries, block is " + std::to_string(plan.block));
        return;
    }
    if (plan.outer * plan.block != size) {
        report.add("plan.outer-mismatch", Severity::kError, op_index,
                   where + ": outer * block = " +
                       std::to_string(plan.outer * plan.block) +
                       " != register size " + std::to_string(size));
    }

    // Local offsets: in bounds, and equal to the canonical table (the
    // kernels' gather/scatter indices are base + local_offset[b]).
    Index max_local = 0;
    for (std::size_t b = 0; b < plan.local_offset.size(); ++b) {
        const Index off = plan.local_offset[b];
        if (off >= size) {
            report.add("plan.offset-bounds", Severity::kError, op_index,
                       where + ": local_offset[" + std::to_string(b) +
                           "] = " + std::to_string(off) +
                           " outside register size " + std::to_string(size));
        }
        max_local = std::max(max_local, off);
    }
    const std::vector<Index> expected = exec::local_offsets(dims, wires);
    if (plan.local_offset != expected) {
        report.add("plan.offset-mismatch", Severity::kError, op_index,
                   where + ": local_offset table differs from the "
                           "canonical wire-stride table");
    }

    // Base offsets: every reachable amplitude index base + local must be
    // inside the register, whichever way bases are produced.
    if (!plan.base_offsets.empty()) {
        if (plan.base_offsets.size() != static_cast<std::size_t>(plan.outer)) {
            report.add("plan.table-size", Severity::kError, op_index,
                       where + ": base_offsets table has " +
                           std::to_string(plan.base_offsets.size()) +
                           " entries, outer is " + std::to_string(plan.outer));
        }
        for (std::size_t o = 0; o < plan.base_offsets.size(); ++o) {
            const Index base = plan.base_offsets[o];
            if (base >= size || max_local >= size - base) {
                report.add("plan.offset-bounds", Severity::kError, op_index,
                           where + ": base_offsets[" + std::to_string(o) +
                               "] = " + std::to_string(base) +
                               " + max local offset " +
                               std::to_string(max_local) +
                               " reaches outside register size " +
                               std::to_string(size));
            }
        }
    } else {
        Index strided_outer = 1;
        Index max_base = 0;
        bool strides_ok = plan.other_dims.size() == plan.other_strides.size();
        for (std::size_t i = 0; strides_ok && i < plan.other_dims.size();
             ++i) {
            strided_outer *= plan.other_dims[i];
            max_base += (plan.other_dims[i] - 1) * plan.other_strides[i];
        }
        if (!strides_ok) {
            report.add("plan.table-size", Severity::kError, op_index,
                       where + ": other_dims/other_strides length mismatch");
        } else {
            if (strided_outer != plan.outer) {
                report.add("plan.outer-mismatch", Severity::kError, op_index,
                           where + ": strided base generator covers " +
                               std::to_string(strided_outer) +
                               " configurations, outer is " +
                               std::to_string(plan.outer));
            }
            if (plan.outer > 0 &&
                (max_base >= size || max_local >= size - max_base)) {
                report.add("plan.offset-bounds", Severity::kError, op_index,
                           where + ": max strided base " +
                               std::to_string(max_base) +
                               " + max local offset " +
                               std::to_string(max_local) +
                               " reaches outside register size " +
                               std::to_string(size));
            }
        }
    }
}

void
audit_compiled_op(const WireDims& dims, const CompiledOp& op, Report& report,
                  std::ptrdiff_t op_index)
{
    const std::string where =
        std::string(exec::kernel_name(op.kind)) + " op on wires " +
        wires_str(op.wires);

    if (op.gate.empty()) {
        report.add("plan.kernel-class", Severity::kError, op_index,
                   where + ": compiled op holds an empty gate");
        return;
    }
    if (op.plan) {
        audit_plan(dims, op.wires, *op.plan, report, op_index);
    }

    // Kernel-class assignment: a fresh dispatch on the same (gate, wires)
    // must land on the same kernel with the same precomputed data.
    CompiledOp fresh;
    try {
        fresh = exec::compile_op(dims, op.gate, op.wires);
    } catch (const std::exception& e) {
        report.add("plan.kernel-class", Severity::kError, op_index,
                   where + ": compile_op rejects this site: " + e.what());
        return;
    }
    if (fresh.kind != op.kind) {
        report.add("plan.kernel-class", Severity::kError, op_index,
                   where + ": compiled as " + exec::kernel_name(op.kind) +
                       " but compile_op dispatches " +
                       exec::kernel_name(fresh.kind));
        return;
    }

    const auto data_mismatch = [&](const std::string& what) {
        report.add("plan.kernel-data", Severity::kError, op_index,
                   where + ": " + what +
                       " differs from a fresh compilation's");
    };
    switch (op.kind) {
        case KernelKind::kPermutation:
        case KernelKind::kMonomial: {
            if (op.cycle_offsets != fresh.cycle_offsets ||
                op.cycle_lengths != fresh.cycle_lengths) {
                data_mismatch("cycle table");
            }
            for (const Index off : op.cycle_offsets) {
                if (off >= dims.size()) {
                    report.add("plan.offset-bounds", Severity::kError,
                               op_index,
                               where + ": cycle offset " +
                                   std::to_string(off) +
                                   " outside register size " +
                                   std::to_string(dims.size()));
                }
            }
            if (op.kind == KernelKind::kMonomial) {
                bool ok = op.cycle_phases.size() == fresh.cycle_phases.size();
                for (std::size_t i = 0; ok && i < op.cycle_phases.size();
                     ++i) {
                    ok = complex_close(op.cycle_phases[i],
                                       fresh.cycle_phases[i]);
                }
                if (!ok) {
                    data_mismatch("cycle phase table");
                }
            }
            break;
        }
        case KernelKind::kDiagonal: {
            bool ok = op.diag.size() == fresh.diag.size();
            for (std::size_t i = 0; ok && i < op.diag.size(); ++i) {
                ok = complex_close(op.diag[i], fresh.diag[i]);
            }
            if (!ok) {
                data_mismatch("diagonal table");
            }
            break;
        }
        case KernelKind::kSingleWireD2:
        case KernelKind::kSingleWireD3: {
            const int w = op.wires[0];
            if (op.stride1 != dims.stride(w) ||
                op.period1 != dims.stride(w) *
                                  static_cast<Index>(dims.dim(w))) {
                report.add("plan.kernel-data", Severity::kError, op_index,
                           where + ": single-wire run geometry does not "
                                   "match the wire's stride/period");
            }
            const std::size_t d = static_cast<std::size_t>(dims.dim(w));
            bool ok = true;
            for (std::size_t r = 0; r < d; ++r) {
                for (std::size_t c = 0; c < d; ++c) {
                    ok = ok && complex_close(op.u[r * d + c],
                                             op.gate.matrix()(r, c));
                }
            }
            if (!ok) {
                data_mismatch("unrolled unitary");
            }
            break;
        }
        case KernelKind::kControlled: {
            // Independent re-derivation from the gate's cached structure:
            // the activation mask is sum control_value * wire stride, the
            // target table the canonical local offsets of the trailing
            // operands, the inner operator the structure's.
            if (!op.gate.has_controlled_structure()) {
                report.add("plan.ctrl-mask", Severity::kError, op_index,
                           where + ": controlled kernel but the gate has "
                                   "no derived controlled structure");
                break;
            }
            const ControlledStructure& cs = op.gate.controlled_structure();
            const auto nc = static_cast<std::size_t>(cs.num_controls);
            Index mask = 0;
            for (std::size_t i = 0; i < nc && i < op.wires.size(); ++i) {
                mask += static_cast<Index>(cs.control_values[i]) *
                        dims.stride(op.wires[i]);
            }
            if (op.ctrl_offset != mask) {
                report.add("plan.ctrl-mask", Severity::kError, op_index,
                           where + ": control offset " +
                               std::to_string(op.ctrl_offset) +
                               " != derive_controlled_structure mask " +
                               std::to_string(mask));
            }
            const std::vector<int> targets(op.wires.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   nc),
                                           op.wires.end());
            if (op.inner_offset != exec::local_offsets(dims, targets)) {
                report.add("plan.ctrl-mask", Severity::kError, op_index,
                           where + ": inner offset table differs from the "
                                   "target wires' canonical offsets");
            }
            if (op.inner.rows() != cs.inner.rows() ||
                !op.inner.approx_equal(cs.inner, kLooseTol)) {
                report.add("plan.ctrl-mask", Severity::kError, op_index,
                           where + ": inner operator differs from the "
                                   "derived controlled structure's");
            }
            break;
        }
        case KernelKind::kDense:
            break;
    }
}

void
audit_compiled(const exec::CompiledCircuit& compiled, Report& report)
{
    const WireDims& dims = compiled.dims();
    std::vector<std::uint8_t> seen(compiled.num_source_ops(), 0);
    bool cover_ok = true;

    for (std::size_t i = 0; i < compiled.ops().size(); ++i) {
        const CompiledOp& op = compiled.ops()[i];
        const std::ptrdiff_t anchor =
            op.source_ops.empty()
                ? -1
                : static_cast<std::ptrdiff_t>(op.source_ops.front());
        audit_compiled_op(dims, op, report, anchor);

        std::uint32_t prev = 0;
        for (std::size_t j = 0; j < op.source_ops.size(); ++j) {
            const std::uint32_t s = op.source_ops[j];
            if (s >= seen.size() || seen[s] || (j > 0 && s <= prev)) {
                cover_ok = false;
            } else {
                seen[s] = 1;
            }
            prev = s;
        }
        if (op.source_ops.empty()) {
            cover_ok = false;
        }
    }
    for (const std::uint8_t s : seen) {
        cover_ok = cover_ok && s;
    }
    if (!cover_ok) {
        report.add("plan.source-cover", Severity::kError, -1,
                   "compiled ops do not cover every source operation "
                   "exactly once in ascending member order");
    }
}

}  // namespace qd::verify
