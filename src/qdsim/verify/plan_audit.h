/**
 * @file plan_audit.h
 * Static audit of compiled execution artifacts (exec/): proves every
 * ApplyPlan offset table stays within state bounds for its register, that
 * controlled-kernel masks agree with the gate's derived
 * ControlledStructure, and that each CompiledOp's kernel class matches
 * what a fresh compile_op dispatch would choose — all without running a
 * single kernel. The kernels index raw amplitude storage through these
 * tables, so a corrupted plan is silent memory corruption; this audit is
 * the static counterpart of the sanitizer CI legs.
 */
#ifndef QDSIM_VERIFY_PLAN_AUDIT_H
#define QDSIM_VERIFY_PLAN_AUDIT_H

#include <span>

#include "qdsim/exec/compiled_circuit.h"
#include "qdsim/verify/report.h"

namespace qd::verify {

/**
 * Audits one ApplyPlan against its register and wires: block/outer
 * geometry consistent with `dims` (plan.block-mismatch,
 * plan.outer-mismatch, plan.table-size), every local offset equal to the
 * canonical local_offsets table (plan.offset-mismatch), and every
 * reachable amplitude index base_of(o) + local_offset[b] provably inside
 * [0, dims.size()) (plan.offset-bounds) — for both the materialised
 * base table and the strided base_of fallback.
 */
void audit_plan(const WireDims& dims, std::span<const int> wires,
                const exec::ApplyPlan& plan, Report& report,
                std::ptrdiff_t op_index = -1);

/**
 * Audits one compiled operation: its plan (audit_plan), its kernel-class
 * assignment against a fresh compile_op dispatch (plan.kernel-class), and
 * per-kernel data consistency — controlled masks/offsets re-derived from
 * the gate's ControlledStructure (plan.ctrl-mask), single-wire run
 * geometry, and the diagonal table (plan.kernel-data).
 */
void audit_compiled_op(const WireDims& dims, const exec::CompiledOp& op,
                       Report& report, std::ptrdiff_t op_index = -1);

/**
 * Audits a whole compiled circuit: every op via audit_compiled_op plus
 * the source-op cover — each source index in exactly one compiled op,
 * ascending within an op (plan.source-cover).
 */
void audit_compiled(const exec::CompiledCircuit& compiled, Report& report);

}  // namespace qd::verify

#endif  // QDSIM_VERIFY_PLAN_AUDIT_H
