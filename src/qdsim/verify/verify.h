/**
 * @file verify.h
 * Static circuit verification: analyze circuits (and, via plan_audit.h /
 * fusion_audit.h, their compiled artifacts) without executing them.
 *
 * Checker families:
 *  - circuit legality: wire bounds, duplicate wires, gate/wire dimension
 *    agreement, unitarity (with a hermitian/diagonal/permutation/monomial
 *    classification pass behind Options::classify);
 *  - dead code: identity-up-to-phase gates and adjacent inverse pairs the
 *    transpiler should have removed;
 *  - domain lint (paper discipline): circuits built purely from
 *    permutation gates are propagated classically over qubit-subspace
 *    basis inputs (the paper's Section 6 fast-verification path) to prove
 *    that declared ancilla wires return to their input value and that no
 *    |2> population survives to the output — mid-circuit |2> occupancy is
 *    the paper's mechanism (lifted regions) and stays legal;
 *  - compiled-artifact audits (plan_audit.h, fusion_audit.h) re-derive
 *    kernel dispatch and fusion partitions and prove their offset tables
 *    and class algebra.
 *
 * Strict mode: `strict()` reads QD_VERIFY=strict (overridable with
 * set_strict), and the simulation entry points (`simulate`,
 * `apply_circuit`, `circuit_unitary`, `run_noisy_trials`,
 * `density_matrix_fidelity`) call `enforce` before executing, so a Debug
 * CI leg exporting QD_VERIFY=strict turns the whole test suite into a
 * verifier fuzz corpus. Off by default; precompiled-circuit overloads
 * (the per-shot hot paths) are never re-verified.
 */
#ifndef QDSIM_VERIFY_VERIFY_H
#define QDSIM_VERIFY_VERIFY_H

#include <span>
#include <stdexcept>
#include <vector>

#include "qdsim/circuit.h"
#include "qdsim/exec/fusion.h"
#include "qdsim/verify/report.h"

namespace qd::verify {

/** What `analyze` checks and how strictly. */
struct Options {
    /** Wire bounds / duplicates / dimension agreement / unitarity. */
    bool legality = true;
    /** Identity-up-to-phase gates and adjacent inverse pairs. */
    bool dead_code = true;
    /** Emit an info finding classifying each distinct gate matrix
     *  (unitary/hermitian/diagonal/permutation/monomial). */
    bool classify = false;
    /** Compile the circuit and audit every plan/kernel assignment
     *  (plan_audit.h). Skipped when legality found structural errors. */
    bool plan_audit = true;
    /** Re-derive the fusion partition under `fusion`/`fences` and audit
     *  its invariants (fusion_audit.h). Skipped like plan_audit. */
    bool fusion_audit = true;
    /** Fusion settings the audited compilation would run under. */
    exec::FusionOptions fusion{};
    /** fence_after flags for the fusion audit (empty or one per op). */
    std::vector<std::uint8_t> fences{};

    /** Wires that must return to their input value on every qubit-subspace
     *  basis input (clean ancilla enter as |0>; dirty borrows restore any
     *  input). Empty disables the check. Permutation circuits only. */
    std::vector<int> ancilla_wires{};
    /** Enforce the paper's qubit-I/O protocol: no output digit may be 2
     *  on any qubit-subspace basis input. Permutation circuits only. */
    bool expect_qubit_io = false;
    /** Cap on propagated basis inputs; wider registers are sampled with a
     *  deterministic stride so both ends of the index space are covered. */
    Index max_domain_inputs = 4096;

    /** Downgrade circuit.non-unitary to a warning: the simulator applies
     *  non-unitary matrices by design (Kraus operators, linearity tests),
     *  so strict-mode enforcement must not reject them. */
    bool allow_nonunitary = false;

    /** Numeric tolerance for unitarity / identity comparisons. */
    Real tol = kLooseTol;
};

/** Analyzes a circuit; never throws on findings (see enforce). */
[[nodiscard]] Report analyze(const Circuit& circuit,
                             const Options& options = {});

/**
 * Analyzes a raw operation sequence over `dims`. Unlike Circuit (whose
 * append/mutators validate), an Operation span can encode arbitrary
 * malformed sites, which is what the legality rules are for: wire
 * out-of-range, duplicate wires, gate/wire dimension mismatch, arity
 * mismatch, empty gates.
 */
[[nodiscard]] Report analyze_ops(const WireDims& dims,
                                 std::span<const Operation> ops,
                                 const Options& options = {});

// ------------------------------------------------------------ strict mode

/** True when strict verification is on: QD_VERIFY=strict in the
 *  environment (read once), unless overridden by set_strict. */
[[nodiscard]] bool strict();

/** Overrides the environment (tests); clear_strict() restores it. */
void set_strict(bool on);
void clear_strict();

/** Thrown by enforce when strict analysis finds errors. */
class VerificationError : public std::runtime_error {
  public:
    explicit VerificationError(Report report);
    [[nodiscard]] const Report& report() const { return report_; }

  private:
    Report report_;
};

/**
 * No-op unless strict(); otherwise analyzes `circuit` (legality + plan +
 * fusion audits under `fusion`/`fences`; dead-code/domain heuristics and
 * the unitarity error are excluded — the simulator applies non-unitary
 * matrices by design) and throws VerificationError if any error finding
 * survives. Called by the circuit-taking simulation entry points.
 */
void enforce(const Circuit& circuit, const exec::FusionOptions& fusion = {},
             std::span<const std::uint8_t> fences = {});

}  // namespace qd::verify

#endif  // QDSIM_VERIFY_VERIFY_H
