#include "qdsim/verify/report.h"

#include <sstream>
#include <utility>

namespace qd::verify {

const char*
severity_name(Severity severity)
{
    switch (severity) {
        case Severity::kInfo:
            return "info";
        case Severity::kWarning:
            return "warning";
        case Severity::kError:
            return "error";
    }
    return "unknown";
}

void
Report::add(std::string rule, Severity severity, std::ptrdiff_t op_index,
            std::string message)
{
    findings_.push_back(
        Finding{std::move(rule), severity, op_index, std::move(message)});
}

std::size_t
Report::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Finding& f : findings_) {
        n += f.severity == severity ? 1 : 0;
    }
    return n;
}

bool
Report::has_rule(std::string_view rule) const
{
    return count_rule(rule) > 0;
}

std::size_t
Report::count_rule(std::string_view rule) const
{
    std::size_t n = 0;
    for (const Finding& f : findings_) {
        n += f.rule == rule ? 1 : 0;
    }
    return n;
}

void
Report::merge(const Report& other)
{
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
}

std::string
Report::to_string() const
{
    std::ostringstream out;
    for (const Finding& f : findings_) {
        out << severity_name(f.severity) << ' ' << f.rule;
        if (f.op_index >= 0) {
            out << " @op " << f.op_index;
        }
        out << ": " << f.message << '\n';
    }
    return out.str();
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
void
append_json_string(std::ostringstream& out, std::string_view s)
{
    out << '"';
    for (const char c : s) {
        switch (c) {
            case '"':
                out << "\\\"";
                break;
            case '\\':
                out << "\\\\";
                break;
            case '\n':
                out << "\\n";
                break;
            case '\t':
                out << "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char kHex[] = "0123456789abcdef";
                    out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

}  // namespace

std::string
Report::to_json() const
{
    std::ostringstream out;
    out << "{\"findings\":[";
    for (std::size_t i = 0; i < findings_.size(); ++i) {
        const Finding& f = findings_[i];
        out << (i ? "," : "") << "{\"rule\":";
        append_json_string(out, f.rule);
        out << ",\"severity\":\"" << severity_name(f.severity) << '"'
            << ",\"op_index\":" << f.op_index << ",\"message\":";
        append_json_string(out, f.message);
        out << '}';
    }
    out << "],\"errors\":" << count(Severity::kError)
        << ",\"warnings\":" << count(Severity::kWarning)
        << ",\"infos\":" << count(Severity::kInfo) << '}';
    return out.str();
}

}  // namespace qd::verify
