/**
 * @file report.h
 * Finding/Report types shared by every static checker in verify/.
 *
 * A Finding is one rule violation (or observation) anchored to an
 * operation index; a Report is the ordered list a whole analysis pass
 * produced. Rule identifiers are stable dotted strings
 * ("circuit.wire-bounds", "fusion.fence-span", ...) so tools, tests and
 * CI artifacts can match on them without parsing messages.
 */
#ifndef QDSIM_VERIFY_REPORT_H
#define QDSIM_VERIFY_REPORT_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qd::verify {

/** How bad a finding is. Only kError findings fail strict mode. */
enum class Severity : int {
    kInfo,     ///< classification note; never actionable on its own
    kWarning,  ///< suspicious but legal (dead gates, dirty ancilla, ...)
    kError,    ///< invariant violation; executing the artifact is unsafe
};

/** Lower-case severity name ("info" / "warning" / "error"). */
const char* severity_name(Severity severity);

/** One rule violation (or observation) produced by a checker. */
struct Finding {
    /** Stable dotted rule identifier, e.g. "circuit.duplicate-wire". */
    std::string rule;
    Severity severity = Severity::kError;
    /** Index of the offending operation in the analyzed sequence, or -1
     *  when the finding concerns the whole artifact (e.g. a NoiseModel
     *  channel or an options struct). */
    std::ptrdiff_t op_index = -1;
    /** Human-readable description with the concrete values involved. */
    std::string message;
};

/** Ordered findings of one analysis pass, with severity tallies. */
class Report {
  public:
    void add(std::string rule, Severity severity, std::ptrdiff_t op_index,
             std::string message);

    [[nodiscard]] const std::vector<Finding>& findings() const {
        return findings_;
    }
    [[nodiscard]] std::size_t size() const { return findings_.size(); }

    [[nodiscard]] std::size_t count(Severity severity) const;
    [[nodiscard]] bool has_errors() const {
        return count(Severity::kError) > 0;
    }
    /** True when the pass produced no findings at all (any severity). */
    [[nodiscard]] bool clean() const { return findings_.empty(); }

    /** True if any finding carries the given rule id (test/tool matcher). */
    [[nodiscard]] bool has_rule(std::string_view rule) const;
    /** Number of findings carrying the given rule id. */
    [[nodiscard]] std::size_t count_rule(std::string_view rule) const;

    /** Appends all findings of `other` (order preserved). */
    void merge(const Report& other);

    /** One line per finding: "severity rule @op: message". */
    [[nodiscard]] std::string to_string() const;

    /** Machine-readable JSON object:
     *  {"findings":[{"rule","severity","op_index","message"},...],
     *   "errors":N,"warnings":N,"infos":N}. */
    [[nodiscard]] std::string to_json() const;

  private:
    std::vector<Finding> findings_;
};

}  // namespace qd::verify

#endif  // QDSIM_VERIFY_REPORT_H
