#include "qdsim/verify/verify.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qdsim/exec/compiled_circuit.h"
#include "qdsim/exec/kernels.h"
#include "qdsim/verify/fusion_audit.h"
#include "qdsim/verify/plan_audit.h"

namespace qd::verify {

namespace {

std::string
wires_str(std::span<const int> wires)
{
    std::string s = "[";
    for (std::size_t i = 0; i < wires.size(); ++i) {
        s += (i ? "," : "") + std::to_string(wires[i]);
    }
    return s + "]";
}

std::string
op_label(const Operation& op)
{
    return (op.gate.empty() ? std::string("<empty>") : op.gate.name()) +
           " on " + wires_str(op.wires);
}

/**
 * Legality pass: wire bounds/duplicates, gate-vs-wire dimension
 * agreement, arity, unitarity. Returns true when the sequence is
 * structurally sound (compile_op would accept every site), which gates
 * the compiled-artifact audits.
 */
bool
check_legality(const WireDims& dims, std::span<const Operation> ops,
               const Options& options, Report& report)
{
    bool structural_ok = true;
    // One unitarity/classification finding per distinct matrix payload:
    // circuits share gate flyweights, so per-op reporting would flood.
    std::unordered_map<const Matrix*, bool> matrix_seen;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Operation& op = ops[i];
        const auto idx = static_cast<std::ptrdiff_t>(i);
        if (op.gate.empty()) {
            report.add("circuit.empty-gate", Severity::kError, idx,
                       "operation holds a default-constructed gate");
            structural_ok = false;
            continue;
        }
        if (op.wires.size() != static_cast<std::size_t>(op.gate.arity())) {
            report.add("circuit.arity-mismatch", Severity::kError, idx,
                       op_label(op) + ": gate arity " +
                           std::to_string(op.gate.arity()) + " but " +
                           std::to_string(op.wires.size()) +
                           " wires bound");
            structural_ok = false;
            continue;
        }
        bool wires_ok = true;
        std::vector<int> sorted = op.wires;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t j = 0; j + 1 < sorted.size(); ++j) {
            if (sorted[j] == sorted[j + 1]) {
                report.add("circuit.duplicate-wire", Severity::kError, idx,
                           op_label(op) + ": wire " +
                               std::to_string(sorted[j]) + " bound twice");
                wires_ok = false;
                break;
            }
        }
        for (std::size_t j = 0; j < op.wires.size(); ++j) {
            const int w = op.wires[j];
            if (w < 0 || w >= dims.num_wires()) {
                report.add("circuit.wire-bounds", Severity::kError, idx,
                           op_label(op) + ": wire " + std::to_string(w) +
                               " outside the " +
                               std::to_string(dims.num_wires()) +
                               "-wire register");
                wires_ok = false;
            } else if (op.gate.dims()[j] != dims.dim(w)) {
                report.add("circuit.dim-mismatch", Severity::kError, idx,
                           op_label(op) + ": operand " + std::to_string(j) +
                               " has dimension " +
                               std::to_string(op.gate.dims()[j]) +
                               " but wire " + std::to_string(w) +
                               " has dimension " +
                               std::to_string(dims.dim(w)));
                wires_ok = false;
            }
        }
        structural_ok = structural_ok && wires_ok;

        const Matrix* key = &op.gate.matrix();
        if (matrix_seen.emplace(key, true).second) {
            if (!key->is_unitary(options.tol)) {
                report.add("circuit.non-unitary",
                           options.allow_nonunitary ? Severity::kWarning
                                                    : Severity::kError,
                           idx,
                           op_label(op) +
                               ": gate matrix is not unitary within tol");
            }
            if (options.classify) {
                std::vector<Index> perm;
                std::vector<Complex> phase;
                std::string cls;
                cls += key->is_unitary(options.tol) ? "unitary" : "non-unitary";
                if (key->approx_equal(key->dagger(), options.tol)) {
                    cls += " hermitian";
                }
                if (op.gate.is_permutation()) {
                    cls += " permutation";
                } else if (op.gate.is_diagonal_gate()) {
                    cls += " diagonal";
                } else if (exec::monomial_action(*key, perm, phase)) {
                    cls += " monomial";
                } else if (op.gate.has_controlled_structure()) {
                    cls += " controlled";
                } else {
                    cls += " dense";
                }
                report.add("circuit.classify", Severity::kInfo, idx,
                           op.gate.name() + ": " + cls);
            }
        }
    }
    return structural_ok;
}

/** Dead-code pass: identity-up-to-phase gates and adjacent inverse pairs
 *  (adjacency is dependency adjacency: the next op sharing a wire). */
void
check_dead_code(std::span<const Operation> ops, const Options& options,
                Report& report)
{
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Operation& op = ops[i];
        if (op.gate.empty()) {
            continue;
        }
        const Matrix& m = op.gate.matrix();
        const Matrix eye = Matrix::identity(m.rows());
        if (m.approx_equal_up_to_phase(eye, options.tol)) {
            report.add("dead.identity", Severity::kWarning,
                       static_cast<std::ptrdiff_t>(i),
                       op_label(op) + ": identity up to global phase");
            continue;
        }
        // Next op touching any of this op's wires: an exact inverse there
        // cancels this op (nothing between them acts on these wires).
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
            const Operation& later = ops[j];
            if (later.gate.empty()) {
                continue;
            }
            bool shares = false;
            for (const int w : later.wires) {
                for (const int v : op.wires) {
                    shares = shares || w == v;
                }
            }
            if (!shares) {
                continue;
            }
            if (later.wires == op.wires &&
                later.gate.matrix().rows() == m.rows() &&
                (later.gate.matrix() * m)
                    .approx_equal_up_to_phase(eye, options.tol)) {
                report.add("dead.inverse-pair", Severity::kWarning,
                           static_cast<std::ptrdiff_t>(j),
                           op_label(later) + ": cancels op " +
                               std::to_string(i) + " (" + op_label(op) +
                               ") with nothing between them on these "
                               "wires");
            }
            break;
        }
    }
}

std::string
digits_str(const std::vector<int>& digits)
{
    std::string s = "|";
    for (const int d : digits) {
        s += std::to_string(d);
    }
    return s + ">";
}

/**
 * Domain lint (paper Section 6 discipline): propagate qubit-subspace
 * basis inputs through permutation-only circuits and prove that declared
 * ancilla wires return to their input value and (expect_qubit_io) that
 * no output digit is 2. Mid-circuit |2> occupancy is the paper's lifted
 * intermediate state and stays legal.
 */
void
check_domain(const WireDims& dims, std::span<const Operation> ops,
             const Options& options, Report& report)
{
    const bool wants = options.expect_qubit_io ||
                       !options.ancilla_wires.empty();
    if (!wants) {
        return;
    }
    for (const int w : options.ancilla_wires) {
        if (w < 0 || w >= dims.num_wires()) {
            report.add("qutrit.dirty-ancilla", Severity::kError, -1,
                       "declared ancilla wire " + std::to_string(w) +
                           " outside the register");
            return;
        }
    }
    for (const Operation& op : ops) {
        if (op.gate.empty() || !op.gate.is_permutation()) {
            report.add("domain.not-classical", Severity::kWarning, -1,
                       "domain lint skipped: circuit contains "
                       "non-permutation gates (no classical propagation)");
            return;
        }
    }

    const int n = dims.num_wires();
    // Qubit-subspace inputs: every wire starts in {0, 1}. Wider registers
    // sample the 2^n patterns with a deterministic stride so both ends of
    // the index space (all-zeros through all-ones) are exercised.
    const Index total = n < 63 ? (Index{1} << n) : options.max_domain_inputs;
    const Index count = std::min<Index>(total, options.max_domain_inputs);
    const Index step = count > 0 ? std::max<Index>(1, total / count) : 1;

    std::vector<int> digits(static_cast<std::size_t>(n), 0);
    std::vector<int> initial(static_cast<std::size_t>(n), 0);
    std::vector<std::uint8_t> reported_dirty(static_cast<std::size_t>(n), 0);
    std::vector<std::uint8_t> reported_leak(static_cast<std::size_t>(n), 0);

    for (Index k = 0; k < count; ++k) {
        const Index pattern = std::min(k * step, total - 1);
        for (int w = 0; w < n; ++w) {
            digits[static_cast<std::size_t>(w)] =
                static_cast<int>((pattern >> w) & 1);
        }
        initial = digits;

        for (const Operation& op : ops) {
            Index local = 0;
            for (std::size_t j = 0; j < op.wires.size(); ++j) {
                local = local * static_cast<Index>(op.gate.dims()[j]) +
                        static_cast<Index>(
                            digits[static_cast<std::size_t>(op.wires[j])]);
            }
            Index out = op.gate.permute(local);
            for (std::size_t j = op.wires.size(); j-- > 0;) {
                const auto d = static_cast<Index>(op.gate.dims()[j]);
                digits[static_cast<std::size_t>(op.wires[j])] =
                    static_cast<int>(out % d);
                out /= d;
            }
        }

        for (const int w : options.ancilla_wires) {
            const auto wi = static_cast<std::size_t>(w);
            if (digits[wi] != initial[wi] && !reported_dirty[wi]) {
                reported_dirty[wi] = 1;
                report.add("qutrit.dirty-ancilla", Severity::kError, -1,
                           "ancilla wire " + std::to_string(w) +
                               " ends in |" + std::to_string(digits[wi]) +
                               "> instead of its input |" +
                               std::to_string(initial[wi]) + "> on input " +
                               digits_str(initial));
            }
        }
        if (options.expect_qubit_io) {
            for (int w = 0; w < n; ++w) {
                const auto wi = static_cast<std::size_t>(w);
                if (digits[wi] >= 2 && !reported_leak[wi]) {
                    reported_leak[wi] = 1;
                    report.add("qutrit.leaked-two", Severity::kError, -1,
                               "wire " + std::to_string(w) +
                                   " ends outside the qubit subspace (|" +
                                   std::to_string(digits[wi]) +
                                   ">) on input " + digits_str(initial));
                }
            }
        }
    }
}

/** Core analysis over a raw op sequence; returns structural soundness so
 *  callers know whether compiled-artifact audits are safe to run. */
bool
analyze_core(const WireDims& dims, std::span<const Operation> ops,
             const Options& options, Report& report)
{
    bool structural_ok = true;
    if (options.legality) {
        structural_ok = check_legality(dims, ops, options, report);
    }
    if (options.dead_code) {
        check_dead_code(ops, options, report);
    }
    check_domain(dims, ops, options, report);
    if (!options.fences.empty() && options.fences.size() != ops.size()) {
        report.add("verify.options", Severity::kError, -1,
                   "fence flags length " +
                       std::to_string(options.fences.size()) +
                       " does not match op count " +
                       std::to_string(ops.size()));
        structural_ok = false;
    }
    return structural_ok;
}

void
audit_artifacts(const Circuit& circuit, const Options& options,
                Report& report)
{
    if (options.fusion_audit) {
        audit_fusion(circuit.dims(), circuit.ops(), options.fences,
                     options.fusion, report);
        check_salt_coverage(report);
    }
    if (options.plan_audit) {
        const exec::CompiledCircuit compiled(circuit, options.fusion,
                                             options.fences);
        audit_compiled(compiled, report);
    }
}

}  // namespace

Report
analyze(const Circuit& circuit, const Options& options)
{
    Report report;
    const bool structural_ok =
        analyze_core(circuit.dims(), circuit.ops(), options, report);
    if (structural_ok && (options.plan_audit || options.fusion_audit)) {
        audit_artifacts(circuit, options, report);
    }
    return report;
}

Report
analyze_ops(const WireDims& dims, std::span<const Operation> ops,
            const Options& options)
{
    Report report;
    const bool structural_ok = analyze_core(dims, ops, options, report);
    if (structural_ok && (options.plan_audit || options.fusion_audit)) {
        // Structurally sound, so the validating append cannot throw.
        Circuit rebuilt{dims};
        for (const Operation& op : ops) {
            rebuilt.append(op.gate, op.wires);
        }
        audit_artifacts(rebuilt, options, report);
    }
    return report;
}

// --------------------------------------------------------------- strict

namespace {

/** -1 = follow the environment; 0/1 = explicit override (tests). */
std::atomic<int> g_strict_override{-1};

bool
env_strict()
{
    static const bool value = [] {
        const char* v = std::getenv("QD_VERIFY");
        return v != nullptr && std::strcmp(v, "strict") == 0;
    }();
    return value;
}

}  // namespace

bool
strict()
{
    const int override_value = g_strict_override.load();
    return override_value >= 0 ? override_value != 0 : env_strict();
}

void
set_strict(bool on)
{
    g_strict_override.store(on ? 1 : 0);
}

void
clear_strict()
{
    g_strict_override.store(-1);
}

VerificationError::VerificationError(Report report)
    : std::runtime_error("static verification failed:\n" +
                         report.to_string()),
      report_(std::move(report))
{
}

void
enforce(const Circuit& circuit, const exec::FusionOptions& fusion,
        std::span<const std::uint8_t> fences)
{
    if (!strict()) {
        return;
    }
    Options options;
    options.dead_code = false;
    options.allow_nonunitary = true;
    options.fusion = fusion;
    options.fences.assign(fences.begin(), fences.end());
    Report report = analyze(circuit, options);
    if (report.has_errors()) {
        throw VerificationError(std::move(report));
    }
}

}  // namespace qd::verify
