/**
 * @file noise_audit.h
 * Static audit of noise channels and NoiseModel parameters: CPTP
 * completeness of Kraus sets, probability sanity of mixed-unitary
 * channels, and — for a whole model against a register — the channels
 * the engines would actually build from it (depolarizing per dim,
 * amplitude damping per moment duration).
 *
 * Lives apart from verify.h so the qdsim-level API stays free of the
 * noise layer; enforce_noisy is the strict-mode hook the noisy entry
 * points (run_noisy_trials, density_matrix_fidelity) call.
 */
#ifndef QDSIM_VERIFY_NOISE_AUDIT_H
#define QDSIM_VERIFY_NOISE_AUDIT_H

#include <string_view>

#include "noise/kraus.h"
#include "noise/noise_model.h"
#include "qdsim/verify/verify.h"

namespace qd::verify {

/**
 * Audits one Kraus channel: non-empty, operators square and uniformly
 * sized (noise.shape), and trace-preserving — sum K^dagger K == I within
 * tol (noise.cptp). `label` names the channel in messages.
 */
void audit_kraus(const noise::KrausChannel& channel, Report& report,
                 std::string_view label = "", Real tol = kLooseTol);

/**
 * Audits a mixed-unitary channel: probs/unitaries aligned (noise.shape),
 * probabilities in [0,1] with sum <= 1 (noise.probability), and every
 * operator unitary (noise.unitary).
 */
void audit_mixed_unitary(const noise::MixedUnitaryChannel& channel,
                         Report& report, std::string_view label = "",
                         Real tol = kLooseTol);

/**
 * Audits a NoiseModel against a register: parameter ranges (noise
 * probabilities, durations, decay rates — noise.probability; over-unity
 * per-gate totals are a warning since the sampler saturates), and the
 * concrete channels the engines derive from it — depolarizing1/2 for
 * every wire-dimension (pair) present and amplitude damping for each
 * moment duration — through audit_kraus/audit_mixed_unitary.
 */
[[nodiscard]] Report analyze_noise(const noise::NoiseModel& model,
                                   const WireDims& dims,
                                   Real tol = kLooseTol);

/**
 * Strict-mode gate for the noisy entry points: no-op unless strict();
 * otherwise runs enforce's circuit analysis with the model's error
 * fences plus analyze_noise on the model, and throws VerificationError
 * on any error finding.
 */
void enforce_noisy(const Circuit& circuit, const noise::NoiseModel& model,
                   const exec::FusionOptions& fusion = {});

}  // namespace qd::verify

#endif  // QDSIM_VERIFY_NOISE_AUDIT_H
