/**
 * @file fusion_audit.h
 * Static audit of compile-time fusion partitions (exec/fusion.h).
 *
 * audit_partition proves the structural invariants of ANY partition
 * (exact cover, commute-safe reordering, fences never spanned, per-class
 * caps >= block sizes, no cost regression against the parts);
 * audit_fusion re-derives the stage-1 and stage-2 partitions with
 * fuse_sites and additionally checks the class-algebra cost contract at
 * both levels — stage-1 merges must never exceed the summed cost of
 * their members, stage-2 union merges never exceed cost_ratio x the
 * summed cost of the stage-1 groups they replaced (exactly the admission
 * bound the look-ahead DP committed to).
 *
 * check_salt_coverage closes the FusionOptions::plan_salt() contract: it
 * mutates every option field and reports any whose change leaves the
 * salt value untouched (a stale salt would alias fused-plan variants in
 * a shared PlanCache). The field list is pinned to the struct layout by
 * a structured-binding decomposition in fusion_audit.cc that fails to
 * compile the moment a field is added to FusionOptions without updating
 * the salt and the mutator list.
 */
#ifndef QDSIM_VERIFY_FUSION_AUDIT_H
#define QDSIM_VERIFY_FUSION_AUDIT_H

#include <functional>
#include <span>

#include "qdsim/exec/fusion.h"
#include "qdsim/verify/report.h"

namespace qd::verify {

/**
 * Audits one partition of `ops` into fused groups:
 *  - fusion.cover: every op index in exactly one group, members ascending;
 *  - fusion.wires: group wires distinct/in-range and covering members';
 *  - fusion.commute: any two ops sharing a wire keep their circuit order
 *    in the concatenated execution order;
 *  - fusion.fence-span: no op crosses a fence_after boundary in either
 *    direction, and no group spans one internally;
 *  - fusion.cap: multi-wire blocks within the per-class caps;
 *  - fusion.cost-regression: multi-wire merged blocks no costlier than
 *    max(1, cost_ratio) x the summed member costs (single-wire collapses
 *    are exempt, mirroring the builder's documented exemption).
 */
void audit_partition(const WireDims& dims, std::span<const Operation> ops,
                     std::span<const std::uint8_t> fence_after,
                     std::span<const exec::FusedGroup> groups,
                     const exec::FusionOptions& options, Report& report);

/**
 * Re-derives the partition with fuse_sites(dims, ops, fence_after,
 * options) and audits it: structural invariants via audit_partition plus
 * the exact two-level cost contract (stage-1 merges vs member sums,
 * stage-2 union merges vs the stage-1 groups they replaced).
 */
void audit_fusion(const WireDims& dims, std::span<const Operation> ops,
                  std::span<const std::uint8_t> fence_after,
                  const exec::FusionOptions& options, Report& report);

/**
 * Checks that every FusionOptions field reaches the given salt function:
 * mutating any single field from the defaults must change its value.
 * Reports fusion.salt-coverage per missed field; returns the number of
 * covered fields. The overload audits the real plan_salt().
 */
std::size_t check_salt_coverage(
    const std::function<Index(const exec::FusionOptions&)>& salt,
    Report& report);

std::size_t check_salt_coverage(Report& report);

}  // namespace qd::verify

#endif  // QDSIM_VERIFY_FUSION_AUDIT_H
