#include "qdsim/verify/fusion_audit.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "qdsim/exec/kernels.h"
#include "qdsim/gate.h"

namespace qd::verify {

namespace {

using exec::FusedGroup;
using exec::FusionOptions;

/** A per-class cap of 0 inherits the global max_block (fusion.cc rule). */
Index
effective_cap(Index specific, Index fallback)
{
    return specific != 0 ? specific : fallback;
}

/** Coarse kernel class of a gate, mirroring fusion.cc's classify():
 *  0 = light (permutation/diagonal/monomial), 1 = controlled, 2 = heavy. */
int
coarse_class(const Gate& gate)
{
    if (gate.is_permutation() || gate.is_diagonal_gate()) {
        return 0;
    }
    std::vector<Index> perm;
    std::vector<Complex> phase;
    if (exec::monomial_action(gate.matrix(), perm, phase)) {
        return 0;
    }
    return gate.has_controlled_structure() ? 1 : 2;
}

/** The fused operator of a group as a Gate, so its cached structure
 *  classifies exactly the way compile_op will. */
Gate
probe_gate(const WireDims& dims, std::span<const Operation> ops,
           const FusedGroup& group)
{
    std::vector<int> gdims;
    gdims.reserve(group.wires.size());
    for (const int w : group.wires) {
        gdims.push_back(dims.dim(w));
    }
    return Gate("fused-audit", std::move(gdims),
                exec::fused_matrix(dims, ops, group));
}

std::string
members_str(const FusedGroup& group)
{
    std::string s = "group {";
    for (std::size_t i = 0; i < group.members.size(); ++i) {
        s += (i ? "," : "") + std::to_string(group.members[i]);
    }
    return s + "}";
}

/** Structural invariants of a partition; returns true when the cover is
 *  sound enough for the order/fence/cost checks to be meaningful. */
bool
check_cover(std::span<const Operation> ops,
            std::span<const FusedGroup> groups, Report& report)
{
    std::vector<std::uint8_t> seen(ops.size(), 0);
    bool ok = true;
    for (const FusedGroup& g : groups) {
        if (g.members.empty()) {
            report.add("fusion.cover", Severity::kError, -1,
                       "empty fused group in the partition");
            ok = false;
            continue;
        }
        std::uint32_t prev = 0;
        for (std::size_t j = 0; j < g.members.size(); ++j) {
            const std::uint32_t m = g.members[j];
            if (m >= ops.size()) {
                report.add("fusion.cover", Severity::kError, -1,
                           members_str(g) + ": member " + std::to_string(m) +
                               " outside the operation sequence");
                ok = false;
            } else if (seen[m]) {
                report.add("fusion.cover", Severity::kError,
                           static_cast<std::ptrdiff_t>(m),
                           members_str(g) + ": op appears in two groups");
                ok = false;
            } else {
                seen[m] = 1;
            }
            if (j > 0 && m <= prev) {
                report.add("fusion.cover", Severity::kError,
                           static_cast<std::ptrdiff_t>(m),
                           members_str(g) + ": members not ascending");
                ok = false;
            }
            prev = m;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        if (!seen[i]) {
            report.add("fusion.cover", Severity::kError,
                       static_cast<std::ptrdiff_t>(i),
                       "op missing from every fused group");
            ok = false;
        }
    }
    return ok;
}

void
check_wires(const WireDims& dims, std::span<const Operation> ops,
            const FusedGroup& g, Report& report)
{
    std::set<int> wire_set;
    for (const int w : g.wires) {
        if (w < 0 || w >= dims.num_wires() || !wire_set.insert(w).second) {
            report.add("fusion.wires", Severity::kError,
                       g.members.empty()
                           ? -1
                           : static_cast<std::ptrdiff_t>(g.members.front()),
                       members_str(g) + ": group wire " + std::to_string(w) +
                           " out of range or duplicated");
            return;
        }
    }
    for (const std::uint32_t m : g.members) {
        if (m >= ops.size()) {
            continue;
        }
        for (const int w : ops[m].wires) {
            if (!wire_set.count(w)) {
                report.add("fusion.wires", Severity::kError,
                           static_cast<std::ptrdiff_t>(m),
                           members_str(g) + ": member op wire " +
                               std::to_string(w) +
                               " not covered by the group wires");
            }
        }
    }
}

/** Cap bound for a block of final class `cls`: the builder may have
 *  assigned any class at least as heavy while merging (products only get
 *  lighter), so the sound bound is the max cap over those classes. */
Index
cap_bound(int cls, const FusionOptions& options)
{
    const Index light =
        effective_cap(options.max_block_light, options.max_block);
    const Index ctrl =
        effective_cap(options.max_block_controlled, options.max_block);
    const Index dense =
        effective_cap(options.max_block_dense, options.max_block);
    if (cls == 2) {
        return dense;
    }
    if (cls == 1) {
        return std::max(ctrl, dense);
    }
    return std::max({light, ctrl, dense});
}

struct GroupEval {
    Gate probe;
    int cls = 2;
    Index block = 1;
    std::uint64_t cost = 0;
};

GroupEval
eval_group(const WireDims& dims, std::span<const Operation> ops,
           const FusedGroup& g)
{
    GroupEval e;
    e.probe = probe_gate(dims, ops, g);
    e.cls = coarse_class(e.probe);
    e.block = e.probe.block_size();
    e.cost = exec::estimate_block_cost(dims, g.wires, e.probe, dims.size());
    return e;
}

std::uint64_t
member_cost_sum(const WireDims& dims, std::span<const Operation> ops,
                const FusedGroup& g)
{
    std::uint64_t sum = 0;
    for (const std::uint32_t m : g.members) {
        const Operation& op = ops[m];
        sum += exec::estimate_block_cost(dims, op.wires, op.gate,
                                         dims.size());
    }
    return sum;
}

/** Admission slack absorbing float noise in fused-matrix products. */
bool
cost_within(std::uint64_t cand, double ratio, std::uint64_t parts)
{
    return static_cast<double>(cand) <=
           ratio * static_cast<double>(parts) * (1.0 + 1e-9) + 1.0;
}

void
check_caps_and_cost(const WireDims& dims, std::span<const Operation> ops,
                    std::span<const FusedGroup> groups,
                    const FusionOptions& options, bool check_cost,
                    Report& report)
{
    for (const FusedGroup& g : groups) {
        if (g.wires.size() <= 1) {
            continue;  // single-wire collapses run the unrolled kernels
        }
        if (g.members.size() < 2) {
            continue;  // nothing fused; compiled exactly like a plain op
        }
        const GroupEval e = eval_group(dims, ops, g);
        const std::ptrdiff_t anchor =
            static_cast<std::ptrdiff_t>(g.members.front());
        const Index cap = cap_bound(e.cls, options);
        if (e.block > cap) {
            report.add("fusion.cap", Severity::kError, anchor,
                       members_str(g) + ": fused block " +
                           std::to_string(e.block) +
                           " exceeds the per-class cap " +
                           std::to_string(cap));
        }

        // Class algebra: a group built purely from light members must
        // still land on a light (cycle-walk/diagonal) kernel.
        bool all_light = true;
        for (const std::uint32_t m : g.members) {
            all_light = all_light && coarse_class(ops[m].gate) == 0;
        }
        if (all_light && e.cls != 0) {
            report.add("fusion.class-algebra", Severity::kError, anchor,
                       members_str(g) +
                           ": light members fused into a non-light block");
        }

        if (check_cost) {
            const std::uint64_t parts = member_cost_sum(dims, ops, g);
            const double ratio = std::max(1.0, options.cost_ratio);
            if (!cost_within(e.cost, ratio, parts)) {
                report.add("fusion.cost-regression", Severity::kError,
                           anchor,
                           members_str(g) + ": fused cost " +
                               std::to_string(e.cost) +
                               " exceeds bound over member costs " +
                               std::to_string(parts));
            }
        }
    }
}

void
check_order_and_fences(std::span<const Operation> ops,
                       std::span<const std::uint8_t> fence_after,
                       std::span<const FusedGroup> groups, Report& report)
{
    const std::size_t n = ops.size();

    // Execution position of every op in the concatenated group order.
    std::vector<std::size_t> exec_pos(n, 0);
    std::size_t pos = 0;
    for (const FusedGroup& g : groups) {
        for (const std::uint32_t m : g.members) {
            exec_pos[m] = pos++;
        }
    }

    // Commute safety: when op m executes, every earlier op sharing one of
    // its wires must already have executed (ops may only slide past
    // disjoint-wire groups). Per-wire pending index sets give the
    // earliest not-yet-executed op on each wire.
    std::vector<std::set<std::uint32_t>> pending;
    int max_wire = -1;
    for (const Operation& op : ops) {
        for (const int w : op.wires) {
            max_wire = std::max(max_wire, w);
        }
    }
    pending.resize(static_cast<std::size_t>(max_wire + 1));
    for (std::uint32_t m = 0; m < n; ++m) {
        for (const int w : ops[m].wires) {
            if (w >= 0) {
                pending[static_cast<std::size_t>(w)].insert(m);
            }
        }
    }
    for (const FusedGroup& g : groups) {
        for (const std::uint32_t m : g.members) {
            for (const int w : ops[m].wires) {
                if (w < 0) {
                    continue;
                }
                auto& set = pending[static_cast<std::size_t>(w)];
                if (!set.empty() && *set.begin() < m) {
                    report.add("fusion.commute", Severity::kError,
                               static_cast<std::ptrdiff_t>(m),
                               members_str(g) + ": op slid past op " +
                                   std::to_string(*set.begin()) +
                                   " sharing wire " + std::to_string(w));
                }
            }
            for (const int w : ops[m].wires) {
                if (w >= 0) {
                    pending[static_cast<std::size_t>(w)].erase(m);
                }
            }
        }
    }

    if (fence_after.empty()) {
        return;
    }

    // Fences: nothing after fence f may execute before anything at or
    // before f (prefix-max vs suffix-min of execution positions), and no
    // group may span a fence internally.
    std::vector<std::size_t> fence_prefix(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        fence_prefix[i + 1] = fence_prefix[i] + (fence_after[i] ? 1 : 0);
    }
    for (const FusedGroup& g : groups) {
        const std::uint32_t lo = g.members.front();
        const std::uint32_t hi = g.members.back();
        if (fence_prefix[hi] - fence_prefix[lo] > 0) {
            report.add("fusion.fence-span", Severity::kError,
                       static_cast<std::ptrdiff_t>(lo),
                       members_str(g) + ": fused block spans a noise fence "
                                        "between its members");
        }
    }
    std::vector<std::size_t> prefix_max(n, 0);
    std::vector<std::size_t> suffix_min(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix_max[i] =
            i ? std::max(prefix_max[i - 1], exec_pos[i]) : exec_pos[i];
    }
    for (std::size_t i = n; i-- > 0;) {
        suffix_min[i] = i + 1 < n ? std::min(suffix_min[i + 1], exec_pos[i])
                                  : exec_pos[i];
    }
    for (std::size_t f = 0; f + 1 < n; ++f) {
        if (fence_after[f] && prefix_max[f] > suffix_min[f + 1]) {
            report.add("fusion.fence-span", Severity::kError,
                       static_cast<std::ptrdiff_t>(f),
                       "an op crossed the noise fence after op " +
                           std::to_string(f) + " in the fused order");
        }
    }
}

void
audit_partition_impl(const WireDims& dims, std::span<const Operation> ops,
                     std::span<const std::uint8_t> fence_after,
                     std::span<const FusedGroup> groups,
                     const FusionOptions& options, bool check_cost,
                     Report& report)
{
    if (!fence_after.empty() && fence_after.size() != ops.size()) {
        report.add("fusion.cover", Severity::kError, -1,
                   "fence_after length does not match the op sequence");
        return;
    }
    if (!check_cover(ops, groups, report)) {
        return;
    }
    for (const FusedGroup& g : groups) {
        check_wires(dims, ops, g, report);
    }
    check_order_and_fences(ops, fence_after, groups, report);
    check_caps_and_cost(dims, ops, groups, options, check_cost, report);
}

}  // namespace

void
audit_partition(const WireDims& dims, std::span<const Operation> ops,
                std::span<const std::uint8_t> fence_after,
                std::span<const FusedGroup> groups,
                const FusionOptions& options, Report& report)
{
    audit_partition_impl(dims, ops, fence_after, groups, options,
                         /*check_cost=*/true, report);
}

void
audit_fusion(const WireDims& dims, std::span<const Operation> ops,
             std::span<const std::uint8_t> fence_after,
             const FusionOptions& options, Report& report)
{
    const std::vector<FusedGroup> groups =
        exec::fuse_sites(dims, ops, fence_after, options);
    // Structural invariants; the singleton-sum cost bound is replaced by
    // the exact two-level contract below (stage-1 single-wire collapses
    // may legitimately exceed it — the builder's documented exemption).
    audit_partition_impl(dims, ops, fence_after, groups, options,
                         /*check_cost=*/false, report);
    if (report.has_errors()) {
        return;  // cover/order broken; cost accounting is meaningless
    }

    FusionOptions stage1_options = options;
    stage1_options.cost_model = false;
    const std::vector<FusedGroup> stage1 =
        exec::fuse_sites(dims, ops, fence_after, stage1_options);

    // Stage-1 contract: a multi-wire class-algebra merge never exceeds
    // the summed cost of its members (light stays light, controlled
    // merges share one pass, dense blocks only absorb).
    std::vector<std::uint64_t> stage1_cost(stage1.size(), 0);
    std::vector<std::size_t> op_to_stage1(ops.size(), 0);
    for (std::size_t s = 0; s < stage1.size(); ++s) {
        const FusedGroup& g = stage1[s];
        for (const std::uint32_t m : g.members) {
            op_to_stage1[m] = s;
        }
        const GroupEval e = eval_group(dims, ops, g);
        stage1_cost[s] = e.cost;
        if (g.wires.size() > 1 && g.members.size() > 1 &&
            !cost_within(e.cost, 1.0, member_cost_sum(dims, ops, g))) {
            report.add("fusion.cost-regression", Severity::kError,
                       static_cast<std::ptrdiff_t>(g.members.front()),
                       members_str(g) +
                           ": stage-1 merge costlier than its members");
        }
    }

    // Stage-2 contract: a union merge of whole stage-1 groups was
    // admitted at est(union) <= cost_ratio * sum(est(stage-1 parts)).
    if (!options.cost_model) {
        return;
    }
    for (const FusedGroup& g : groups) {
        std::set<std::size_t> parts;
        for (const std::uint32_t m : g.members) {
            parts.insert(op_to_stage1[m]);
        }
        if (parts.size() < 2) {
            continue;  // identical to a stage-1 group (or finer; stage 2
                       // only coarsens, so finer would fail the cover)
        }
        std::uint64_t part_sum = 0;
        bool whole = true;
        for (const std::size_t s : parts) {
            part_sum += stage1_cost[s];
            whole = whole && std::includes(g.members.begin(),
                                           g.members.end(),
                                           stage1[s].members.begin(),
                                           stage1[s].members.end());
        }
        if (!whole) {
            continue;  // not a coarsening; structural checks already ran
        }
        const GroupEval e = eval_group(dims, ops, g);
        if (!cost_within(e.cost, options.cost_ratio, part_sum)) {
            report.add("fusion.cost-regression", Severity::kError,
                       static_cast<std::ptrdiff_t>(g.members.front()),
                       members_str(g) + ": union cost " +
                           std::to_string(e.cost) +
                           " exceeds the admission bound over its stage-1 "
                           "parts (" +
                           std::to_string(part_sum) + ")");
        }
    }
}

namespace {

/**
 * Field-count pin for the salt contract: decomposing FusionOptions into
 * exactly this many bindings fails to compile the moment a field is
 * added or removed, forcing plan_salt() and kSaltFields below to be
 * revisited together.
 */
[[maybe_unused]] void
salt_field_count_pin()
{
    constexpr exec::FusionOptions o{};
    const auto& [enabled, max_block, cost_model, cost_ratio,
                 max_block_light, max_block_controlled, max_block_dense] = o;
    static_cast<void>(enabled);
    static_cast<void>(max_block);
    static_cast<void>(cost_model);
    static_cast<void>(cost_ratio);
    static_cast<void>(max_block_light);
    static_cast<void>(max_block_controlled);
    static_cast<void>(max_block_dense);
}

struct SaltField {
    const char* name;
    void (*mutate)(exec::FusionOptions&);
};

constexpr SaltField kSaltFields[] = {
    {"enabled", [](exec::FusionOptions& o) { o.enabled = !o.enabled; }},
    {"max_block", [](exec::FusionOptions& o) { o.max_block += 1; }},
    {"cost_model",
     [](exec::FusionOptions& o) { o.cost_model = !o.cost_model; }},
    {"cost_ratio", [](exec::FusionOptions& o) { o.cost_ratio += 0.5; }},
    {"max_block_light",
     [](exec::FusionOptions& o) { o.max_block_light += 1; }},
    {"max_block_controlled",
     [](exec::FusionOptions& o) { o.max_block_controlled += 1; }},
    {"max_block_dense",
     [](exec::FusionOptions& o) { o.max_block_dense += 1; }},
};
static_assert(std::size(kSaltFields) == 7,
              "keep the mutator list in step with FusionOptions (see "
              "salt_field_count_pin)");

}  // namespace

std::size_t
check_salt_coverage(
    const std::function<Index(const exec::FusionOptions&)>& salt,
    Report& report)
{
    const exec::FusionOptions base{};
    const Index base_salt = salt(base);
    std::size_t covered = 0;
    for (const SaltField& field : kSaltFields) {
        exec::FusionOptions mutated = base;
        field.mutate(mutated);
        if (salt(mutated) == base_salt) {
            report.add("fusion.salt-coverage", Severity::kError, -1,
                       std::string("FusionOptions::") + field.name +
                           " does not reach the plan salt: toggling it on "
                           "a shared PlanCache would alias plan variants");
        } else {
            ++covered;
        }
    }
    return covered;
}

std::size_t
check_salt_coverage(Report& report)
{
    return check_salt_coverage(
        [](const exec::FusionOptions& o) { return o.plan_salt(); }, report);
}

}  // namespace qd::verify
