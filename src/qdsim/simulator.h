/**
 * @file simulator.h
 * Ideal (noise-free) state-vector simulation and small-circuit unitary
 * extraction.
 */
#ifndef QDSIM_SIMULATOR_H
#define QDSIM_SIMULATOR_H

#include "qdsim/circuit.h"
#include "qdsim/state_vector.h"

namespace qd {

/** Applies every operation of the circuit to `psi` in order (in place). */
void apply_circuit(const Circuit& circuit, StateVector& psi);

/** Convenience: simulate from |0...0>. */
StateVector simulate(const Circuit& circuit);

/** Convenience: simulate from a copy of the given initial state. */
StateVector simulate(const Circuit& circuit, const StateVector& initial);

/**
 * Full circuit unitary, built by simulating each basis column. Exponential
 * in width; intended for verification of small circuits (width <= ~8 qubits
 * / ~5 qutrits).
 */
Matrix circuit_unitary(const Circuit& circuit);

}  // namespace qd

#endif  // QDSIM_SIMULATOR_H
