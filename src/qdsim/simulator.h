/**
 * @file simulator.h
 * Ideal (noise-free) state-vector simulation and small-circuit unitary
 * extraction, routed through the compiled execution engine (exec/):
 * circuits are lowered to specialized kernels once and the resulting plans
 * are reused across runs, basis columns, and (in the noise engine) shots.
 */
#ifndef QDSIM_SIMULATOR_H
#define QDSIM_SIMULATOR_H

#include "qdsim/circuit.h"
#include "qdsim/exec/compiled_circuit.h"
#include "qdsim/state_vector.h"

namespace qd {

/** Applies every operation of the circuit to `psi` in order (in place).
 *  Compiles the circuit first; callers applying the same circuit to many
 *  states should compile once with exec::CompiledCircuit and run() it. */
void apply_circuit(const Circuit& circuit, StateVector& psi);

/** Convenience: simulate from |0...0>. */
StateVector simulate(const Circuit& circuit);

/** Convenience: simulate from a copy of the given initial state. */
StateVector simulate(const Circuit& circuit, const StateVector& initial);

/** Simulates a precompiled circuit from |0...0>. */
StateVector simulate(const exec::CompiledCircuit& compiled);

/** Simulates a precompiled circuit from a copy of `initial`. */
StateVector simulate(const exec::CompiledCircuit& compiled,
                     const StateVector& initial);

/**
 * Full circuit unitary, built by simulating each basis column against one
 * shared compilation. Exponential in width; intended for verification of
 * small circuits (width <= ~8 qubits / ~5 qutrits).
 */
Matrix circuit_unitary(const Circuit& circuit);

/** Unitary of an already-compiled circuit (column-reusing overload). */
Matrix circuit_unitary(const exec::CompiledCircuit& compiled);

}  // namespace qd

#endif  // QDSIM_SIMULATOR_H
