/**
 * @file circuit.h
 * Circuit IR: an ordered list of operations over a mixed-radix register,
 * with resource accounting (paper Section 2: circuit width and depth).
 */
#ifndef QDSIM_CIRCUIT_H
#define QDSIM_CIRCUIT_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "qdsim/gate.h"

namespace qd {

/**
 * An ordered quantum circuit over wires with per-wire dimensions.
 *
 * Depth is computed by the ASAP scheduler in moments.h; `Stats` aggregates
 * the counts the paper's figures report (total gates, two-qudit gates,
 * depth).
 */
class Circuit {
  public:
    Circuit() = default;
    explicit Circuit(WireDims dims) : dims_(std::move(dims)) {}

    const WireDims& dims() const { return dims_; }
    int num_wires() const { return dims_.num_wires(); }

    const std::vector<Operation>& ops() const { return ops_; }
    std::size_t num_ops() const { return ops_.size(); }
    bool empty_circuit() const { return ops_.empty(); }

    /**
     * Appends a gate on the given wires. Validates distinctness and
     * dimension agreement between the gate's operands and the wires.
     */
    void append(const Gate& gate, const std::vector<int>& wires);

    /** Appends all operations of another circuit over the same register. */
    void extend(const Circuit& other);

    /** Circuit applying the inverse operations in reverse order. */
    Circuit inverse() const;

    // ------------------------------------------------- mutation (transpile)
    //
    // The rewriting passes in src/transpile/ edit circuits in place. All
    // mutators validate the same invariants as append(): distinct in-range
    // wires and gate/wire dimension agreement.

    /** Removes the operation at `index`. */
    void erase_op(std::size_t index);

    /**
     * Removes the operations at the given indices (any order, duplicates
     * ignored). Remaining operations keep their relative order.
     */
    void erase_ops(std::vector<std::size_t> indices);

    /** Replaces the operation at `index` with a new gate/wire binding. */
    void replace_op(std::size_t index, const Gate& gate,
                    const std::vector<int>& wires);

    /** Inserts an operation before `index` (index == num_ops() appends). */
    void insert_op(std::size_t index, const Gate& gate,
                   const std::vector<int>& wires);

    /**
     * Replaces the operation at `index` with the operations of
     * `replacement`, whose wire w is mapped to this circuit's wire
     * `wire_map[w]`. Used by decomposition passes to splice a gate's
     * expansion into the surrounding circuit.
     */
    void splice(std::size_t index, const Circuit& replacement,
                const std::vector<int>& wire_map);

    /**
     * Rebuilds the circuit over a register with different wire dimensions.
     * `adapt` maps each original gate to its counterpart on the new
     * dimensions (called once per distinct gate payload; results are
     * validated against `new_dims` on append). Wire indices are preserved.
     * This is the hook the qubit->qutrit dimension-lifting pass uses.
     */
    Circuit redimensioned(
        const WireDims& new_dims,
        const std::function<Gate(const Gate&)>& adapt) const;

    /** Resource statistics used throughout the evaluation. */
    struct Stats {
        std::size_t total_gates = 0;
        std::size_t one_qudit = 0;
        std::size_t two_qudit = 0;
        std::size_t three_plus_qudit = 0;
        int depth = 0;  ///< critical path length in moments
    };
    Stats stats() const;

    /** Number of two-qudit gates (the paper's Figure 10 metric). */
    std::size_t two_qudit_count() const;

    /** Critical path length in gate moments (the Figure 9 metric). */
    int depth() const;

    /** Single-line textual summary (name, width, counts, depth). */
    std::string summary(const std::string& label = "") const;

  private:
    void validate_op(const Gate& gate, const std::vector<int>& wires) const;

    WireDims dims_;
    std::vector<Operation> ops_;
};

}  // namespace qd

#endif  // QDSIM_CIRCUIT_H
