/**
 * @file circuit.h
 * Circuit IR: an ordered list of operations over a mixed-radix register,
 * with resource accounting (paper Section 2: circuit width and depth).
 */
#ifndef QDSIM_CIRCUIT_H
#define QDSIM_CIRCUIT_H

#include <string>
#include <vector>

#include "qdsim/gate.h"

namespace qd {

/**
 * An ordered quantum circuit over wires with per-wire dimensions.
 *
 * Depth is computed by the ASAP scheduler in moments.h; `Stats` aggregates
 * the counts the paper's figures report (total gates, two-qudit gates,
 * depth).
 */
class Circuit {
  public:
    Circuit() = default;
    explicit Circuit(WireDims dims) : dims_(std::move(dims)) {}

    const WireDims& dims() const { return dims_; }
    int num_wires() const { return dims_.num_wires(); }

    const std::vector<Operation>& ops() const { return ops_; }
    std::size_t num_ops() const { return ops_.size(); }
    bool empty_circuit() const { return ops_.empty(); }

    /**
     * Appends a gate on the given wires. Validates distinctness and
     * dimension agreement between the gate's operands and the wires.
     */
    void append(const Gate& gate, const std::vector<int>& wires);

    /** Appends all operations of another circuit over the same register. */
    void extend(const Circuit& other);

    /** Circuit applying the inverse operations in reverse order. */
    Circuit inverse() const;

    /** Resource statistics used throughout the evaluation. */
    struct Stats {
        std::size_t total_gates = 0;
        std::size_t one_qudit = 0;
        std::size_t two_qudit = 0;
        std::size_t three_plus_qudit = 0;
        int depth = 0;  ///< critical path length in moments
    };
    Stats stats() const;

    /** Number of two-qudit gates (the paper's Figure 10 metric). */
    std::size_t two_qudit_count() const;

    /** Critical path length in gate moments (the Figure 9 metric). */
    int depth() const;

    /** Single-line textual summary (name, width, counts, depth). */
    std::string summary(const std::string& label = "") const;

  private:
    WireDims dims_;
    std::vector<Operation> ops_;
};

}  // namespace qd

#endif  // QDSIM_CIRCUIT_H
