/**
 * @file eigen.h
 * Closed-form eigendecomposition and fractional powers for small unitaries.
 *
 * Gate synthesis in ternary logic needs cube roots of unitaries (the ternary
 * analogue of the controlled-sqrt(X) trick uses W = U^{1/3}; see
 * constructions/ternary_decomp.h). Gates here are at most 3x3 (single-qudit
 * actions for d <= 3) or small composites, so we use characteristic
 * polynomials (quadratic/cubic) with Newton polishing instead of a general
 * iterative eigensolver.
 */
#ifndef QDSIM_EIGEN_H
#define QDSIM_EIGEN_H

#include <vector>

#include "qdsim/matrix.h"

namespace qd {

/**
 * Eigendecomposition U = V diag(values) V^dagger of a normal matrix.
 * Columns of `vectors` are orthonormal eigenvectors.
 */
struct Eigensystem {
    std::vector<Complex> values;
    Matrix vectors;
};

/**
 * Eigendecomposition of a normal (e.g. unitary) matrix of dimension <= 4.
 *
 * @param u A normal matrix (U U^dagger == U^dagger U). Unitarity is not
 *          required, but eigenvector orthogonality relies on normality.
 * @throws std::invalid_argument for dimensions > 4 or non-square input.
 */
Eigensystem eigendecompose(const Matrix& u);

/**
 * Fractional power U^t of a unitary via eigendecomposition, using the
 * principal branch of the logarithm for each eigenvalue. Satisfies
 * (U^{1/k})^k == U exactly up to numerical error for integer k >= 1.
 */
Matrix unitary_power(const Matrix& u, Real t);

/**
 * Roots of a monic polynomial x^n + c[n-1] x^{n-1} + ... + c[0] with complex
 * coefficients, n <= 3, in closed form with Newton polishing.
 * `coeffs` is ordered from the constant term upward (c[0], c[1], ...).
 */
std::vector<Complex> polynomial_roots(const std::vector<Complex>& coeffs);

/**
 * Orthonormal basis of the null space of `a` (dimension <= 4) computed by
 * Gaussian elimination with partial pivoting at tolerance `tol`.
 * Returned as columns of a matrix with a.cols() rows.
 */
Matrix null_space(const Matrix& a, Real tol = 1e-8);

}  // namespace qd

#endif  // QDSIM_EIGEN_H
