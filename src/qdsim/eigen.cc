#include "qdsim/eigen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qd {

namespace {

/** Evaluates the monic polynomial and its derivative at x. */
void
eval_monic(const std::vector<Complex>& coeffs, Complex x, Complex* value,
           Complex* deriv)
{
    const std::size_t n = coeffs.size();
    Complex v(1, 0);   // leading term accumulates
    Complex d(0, 0);
    for (std::size_t i = 0; i < n; ++i) {
        d = d * x + v * Complex(static_cast<Real>(n - i), 0);
        // Horner for value: v = v*x + c[n-1-i]
        v = v * x + coeffs[n - 1 - i];
    }
    *value = v;
    *deriv = d;
}

/** A few Newton iterations to polish a root estimate. */
Complex
polish_root(const std::vector<Complex>& coeffs, Complex x)
{
    for (int iter = 0; iter < 40; ++iter) {
        Complex v, d;
        eval_monic(coeffs, x, &v, &d);
        if (std::abs(v) < 1e-15) {
            break;
        }
        if (std::abs(d) < 1e-300) {
            break;
        }
        const Complex step = v / d;
        x -= step;
        if (std::abs(step) < 1e-15) {
            break;
        }
    }
    return x;
}

Complex
complex_sqrt(Complex z)
{
    return std::sqrt(z);
}

}  // namespace

std::vector<Complex>
polynomial_roots(const std::vector<Complex>& coeffs)
{
    const std::size_t n = coeffs.size();
    if (n == 0) {
        return {};
    }
    if (n == 1) {
        return {-coeffs[0]};
    }
    if (n == 2) {
        // x^2 + bx + c
        const Complex b = coeffs[1], c = coeffs[0];
        const Complex disc = complex_sqrt(b * b - Complex(4, 0) * c);
        // Numerically stable pairing: pick the sign that avoids cancellation.
        Complex q;
        if (std::abs(b + disc) > std::abs(b - disc)) {
            q = -(b + disc) * Complex(0.5, 0);
        } else {
            q = -(b - disc) * Complex(0.5, 0);
        }
        Complex r0 = q;
        Complex r1 = (std::abs(q) > 1e-300) ? c / q : -b - q;
        return {polish_root(coeffs, r0), polish_root(coeffs, r1)};
    }
    if (n == 3) {
        // x^3 + a x^2 + b x + c  (Cardano, depressed cubic)
        const Complex a = coeffs[2], b = coeffs[1], c = coeffs[0];
        const Complex third(1.0 / 3.0, 0);
        const Complex p = b - a * a * third;
        const Complex q =
            Complex(2.0 / 27.0, 0) * a * a * a - a * b * third + c;
        // t^3 + p t + q = 0 with x = t - a/3.
        const Complex disc =
            q * q * Complex(0.25, 0) + p * p * p * Complex(1.0 / 27.0, 0);
        const Complex sq = complex_sqrt(disc);
        Complex u3 = -q * Complex(0.5, 0) + sq;
        if (std::abs(u3) < 1e-30) {
            u3 = -q * Complex(0.5, 0) - sq;
        }
        Complex u = std::pow(u3, 1.0 / 3.0);
        std::vector<Complex> roots;
        const Complex omega(-0.5, std::sqrt(3.0) / 2.0);
        for (int k = 0; k < 3; ++k) {
            Complex uk = u;
            for (int j = 0; j < k; ++j) {
                uk *= omega;
            }
            Complex t;
            if (std::abs(uk) < 1e-30) {
                t = Complex(0, 0);
            } else {
                t = uk - p * third / uk;
            }
            roots.push_back(polish_root(coeffs, t - a * third));
        }
        return roots;
    }
    throw std::invalid_argument("polynomial_roots: degree > 3 unsupported");
}

Matrix
null_space(const Matrix& a, Real tol)
{
    const std::size_t rows = a.rows(), cols = a.cols();
    // Work on a copy; forward elimination with partial pivoting.
    Matrix m = a;
    std::vector<std::size_t> pivot_col;
    std::size_t r = 0;
    for (std::size_t c = 0; c < cols && r < rows; ++c) {
        // Find pivot.
        std::size_t best = r;
        Real best_mag = std::abs(m(r, c));
        for (std::size_t i = r + 1; i < rows; ++i) {
            if (std::abs(m(i, c)) > best_mag) {
                best = i;
                best_mag = std::abs(m(i, c));
            }
        }
        if (best_mag <= tol) {
            continue;  // free column
        }
        if (best != r) {
            for (std::size_t j = 0; j < cols; ++j) {
                std::swap(m(best, j), m(r, j));
            }
        }
        const Complex piv = m(r, c);
        for (std::size_t j = 0; j < cols; ++j) {
            m(r, j) /= piv;
        }
        for (std::size_t i = 0; i < rows; ++i) {
            if (i == r) {
                continue;
            }
            const Complex f = m(i, c);
            if (std::abs(f) > 0) {
                for (std::size_t j = 0; j < cols; ++j) {
                    m(i, j) -= f * m(r, j);
                }
            }
        }
        pivot_col.push_back(c);
        ++r;
    }
    // Free columns parameterise the null space.
    std::vector<std::size_t> free_cols;
    for (std::size_t c = 0; c < cols; ++c) {
        if (std::find(pivot_col.begin(), pivot_col.end(), c) ==
            pivot_col.end()) {
            free_cols.push_back(c);
        }
    }
    Matrix basis(cols, free_cols.size());
    for (std::size_t k = 0; k < free_cols.size(); ++k) {
        const std::size_t fc = free_cols[k];
        basis(fc, k) = Complex(1, 0);
        for (std::size_t i = 0; i < pivot_col.size(); ++i) {
            basis(pivot_col[i], k) = -m(i, fc);
        }
    }
    // Gram-Schmidt orthonormalisation of the basis columns.
    for (std::size_t k = 0; k < free_cols.size(); ++k) {
        for (std::size_t j = 0; j < k; ++j) {
            Complex dot(0, 0);
            for (std::size_t i = 0; i < cols; ++i) {
                dot += std::conj(basis(i, j)) * basis(i, k);
            }
            for (std::size_t i = 0; i < cols; ++i) {
                basis(i, k) -= dot * basis(i, j);
            }
        }
        Real nrm = 0;
        for (std::size_t i = 0; i < cols; ++i) {
            nrm += std::norm(basis(i, k));
        }
        nrm = std::sqrt(nrm);
        if (nrm > tol) {
            for (std::size_t i = 0; i < cols; ++i) {
                basis(i, k) /= nrm;
            }
        }
    }
    return basis;
}

Eigensystem
eigendecompose(const Matrix& u)
{
    const std::size_t n = u.rows();
    if (n != u.cols() || n == 0 || n > 4) {
        throw std::invalid_argument(
            "eigendecompose: requires square matrix of dimension 1..4");
    }
    Eigensystem es;
    if (n == 1) {
        es.values = {u(0, 0)};
        es.vectors = Matrix::identity(1);
        return es;
    }

    // Characteristic polynomial coefficients (monic), via traces
    // (Faddeev-LeVerrier for small n).
    std::vector<Complex> coeffs;
    if (n == 2) {
        const Complex tr = u.trace();
        const Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
        coeffs = {det, -tr};  // x^2 - tr x + det
    } else if (n == 3) {
        const Complex tr = u.trace();
        const Matrix u2 = u * u;
        const Complex tr2 = u2.trace();
        const Complex c2 = -tr;
        const Complex c1 = (tr * tr - tr2) * Complex(0.5, 0);
        // det via cofactor expansion
        const Complex det =
            u(0, 0) * (u(1, 1) * u(2, 2) - u(1, 2) * u(2, 1)) -
            u(0, 1) * (u(1, 0) * u(2, 2) - u(1, 2) * u(2, 0)) +
            u(0, 2) * (u(1, 0) * u(2, 1) - u(1, 1) * u(2, 0));
        coeffs = {-det, c1, c2};
    } else {
        // n == 4: characteristic polynomial via Faddeev-LeVerrier, roots
        // via Durand-Kerner (reliable for unitary spectra on the circle).
        std::vector<Complex> c(n + 1);
        c[n] = Complex(1, 0);
        Matrix M = Matrix::zero(n, n);
        for (std::size_t k = 1; k <= n; ++k) {
            // M_k = U * M_{k-1} + c_{n-k+1} I
            if (k == 1) {
                M = Matrix::identity(n);
            } else {
                M = u * M;
                for (std::size_t i = 0; i < n; ++i) {
                    M(i, i) += c[n - k + 1];
                }
            }
            const Matrix um = u * M;
            c[n - k] = um.trace() * Complex(-1.0 / static_cast<Real>(k), 0);
        }
        coeffs.assign(c.begin(), c.end() - 1);
        // Quartic: factor by finding one root of the resolvent is overkill;
        // use Durand-Kerner style: Newton from perturbed starts on the monic
        // quartic. For our use (unitary matrices, eigenvalues on the unit
        // circle) Newton from roots of unity converges reliably.
        std::vector<Complex> roots;
        std::vector<Complex> starts;
        for (int k = 0; k < 8; ++k) {
            const Real ang = 2 * kPi * (k + 0.37) / 8.0;
            starts.emplace_back(std::cos(ang), std::sin(ang));
        }
        // Durand-Kerner iteration on 4 simultaneous roots.
        std::vector<Complex> z = {starts[0], starts[2], starts[4], starts[6]};
        auto poly = [&](Complex x) {
            Complex v(1, 0);
            for (std::size_t i = 0; i < 4; ++i) {
                v = v * x + coeffs[3 - i];
            }
            return v;
        };
        for (int iter = 0; iter < 200; ++iter) {
            Real moved = 0;
            for (int i = 0; i < 4; ++i) {
                Complex denom(1, 0);
                for (int j = 0; j < 4; ++j) {
                    if (j != i) {
                        denom *= (z[i] - z[j]);
                    }
                }
                if (std::abs(denom) < 1e-300) {
                    z[i] += Complex(1e-8, 1e-8);
                    continue;
                }
                const Complex step = poly(z[i]) / denom;
                z[i] -= step;
                moved = std::max(moved, std::abs(step));
            }
            if (moved < 1e-14) {
                break;
            }
        }
        es.values = z;
        // fallthrough to eigenvector extraction below
        coeffs.clear();
        goto vectors;
    }

    es.values = polynomial_roots(coeffs);

vectors:
    // Cluster equal eigenvalues and extract orthonormal eigenvectors from
    // null spaces. Normality of u guarantees the spaces are orthogonal.
    {
        std::vector<bool> used(es.values.size(), false);
        Matrix vecs(n, n);
        std::size_t col = 0;
        std::vector<Complex> final_vals;
        for (std::size_t i = 0; i < es.values.size(); ++i) {
            if (used[i]) {
                continue;
            }
            // Cluster.
            std::size_t multiplicity = 1;
            Complex lam = es.values[i];
            used[i] = true;
            for (std::size_t j = i + 1; j < es.values.size(); ++j) {
                if (!used[j] && std::abs(es.values[j] - lam) < 1e-6) {
                    lam = (lam * static_cast<Real>(multiplicity) +
                           es.values[j]) /
                          static_cast<Real>(multiplicity + 1);
                    used[j] = true;
                    ++multiplicity;
                }
            }
            Matrix shifted = u;
            for (std::size_t k = 0; k < n; ++k) {
                shifted(k, k) -= lam;
            }
            Matrix ns = null_space(shifted, 1e-7);
            // Guard: numerical rank may disagree with multiplicity; retry
            // with looser tolerance if too few vectors found.
            if (ns.cols() < multiplicity) {
                ns = null_space(shifted, 1e-5);
            }
            for (std::size_t k = 0; k < multiplicity && k < ns.cols(); ++k) {
                for (std::size_t r = 0; r < n; ++r) {
                    vecs(r, col) = ns(r, k);
                }
                final_vals.push_back(lam);
                ++col;
            }
        }
        if (col != n) {
            throw std::runtime_error(
                "eigendecompose: failed to extract a full eigenbasis");
        }
        es.vectors = vecs;
        es.values = final_vals;
    }
    return es;
}

Matrix
unitary_power(const Matrix& u, Real t)
{
    const Eigensystem es = eigendecompose(u);
    const std::size_t n = u.rows();
    std::vector<Complex> powered(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Real mag = std::abs(es.values[i]);
        const Real ang = std::arg(es.values[i]);
        powered[i] = std::polar(std::pow(mag, t), ang * t);
    }
    return es.vectors * Matrix::diagonal(powered) * es.vectors.dagger();
}

}  // namespace qd
