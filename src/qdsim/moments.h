/**
 * @file moments.h
 * ASAP moment scheduling (paper Section 6.1, Figure 8).
 *
 * A Moment is a set of operations on disjoint wires executed simultaneously.
 * The noise engine applies gate errors to every operand of every gate in a
 * moment, then an idle error to every wire; the idle duration depends on
 * whether the moment contains a multi-qudit gate (two-qudit gates are slower
 * than single-qudit gates).
 */
#ifndef QDSIM_MOMENTS_H
#define QDSIM_MOMENTS_H

#include <vector>

#include "qdsim/circuit.h"

namespace qd {

/** One time slice of simultaneously executing operations. */
struct Moment {
    /** Indices into Circuit::ops(). */
    std::vector<std::size_t> op_indices;
    /** True if any gate in the moment acts on >= 2 wires. */
    bool has_multi_qudit = false;
};

/**
 * Greedy as-soon-as-possible schedule: each operation is placed in the
 * earliest moment after the last use of any of its wires (Cirq's
 * EARLIEST strategy, which the paper's simulator uses).
 */
std::vector<Moment> schedule_asap(const Circuit& circuit);

/** Critical-path length of the circuit in moments. */
int circuit_depth(const Circuit& circuit);

}  // namespace qd

#endif  // QDSIM_MOMENTS_H
