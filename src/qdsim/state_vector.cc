#include "qdsim/state_vector.h"

#include <cmath>
#include <stdexcept>

namespace qd {

StateVector::StateVector(WireDims dims)
    : dims_(std::move(dims)), amps_(dims_.size(), Complex(0, 0)) {
    amps_[0] = Complex(1, 0);
}

StateVector::StateVector(WireDims dims, const std::vector<int>& digits)
    : dims_(std::move(dims)), amps_(dims_.size(), Complex(0, 0)) {
    amps_[dims_.pack(digits)] = Complex(1, 0);
}

StateVector
StateVector::from_amplitudes(WireDims dims, std::vector<Complex> amps)
{
    if (amps.size() != static_cast<std::size_t>(dims.size())) {
        throw std::invalid_argument(
            "StateVector::from_amplitudes: amplitude count does not match "
            "register size");
    }
    StateVector psi(std::move(dims));
    psi.amps_ = std::move(amps);
    return psi;
}

void
StateVector::apply(const Matrix& op, std::span<const int> wires)
{
    const int k = static_cast<int>(wires.size());
    for (int i = 0; i < k; ++i) {
        if (wires[i] < 0 || wires[i] >= dims_.num_wires()) {
            throw std::invalid_argument(
                "StateVector::apply: wire index out of range");
        }
        for (int j = i + 1; j < k; ++j) {
            if (wires[i] == wires[j]) {
                throw std::invalid_argument(
                    "StateVector::apply: duplicate wire");
            }
        }
    }
    // Block size = product of operand dims.
    Index block = 1;
    for (const int w : wires) {
        block *= static_cast<Index>(dims_.dim(w));
    }
    if (op.rows() != block || op.cols() != block) {
        throw std::invalid_argument("StateVector::apply: operator size "
                                    "does not match operand dims");
    }

    // Strides of each operand digit in the linear index, and in the local
    // block index (wires[0] most significant).
    std::vector<Index> wire_stride(static_cast<std::size_t>(k));
    std::vector<Index> local_stride(static_cast<std::size_t>(k));
    Index ls = 1;
    for (int i = k; i-- > 0;) {
        wire_stride[static_cast<std::size_t>(i)] = dims_.stride(wires[i]);
        local_stride[static_cast<std::size_t>(i)] = ls;
        ls *= static_cast<Index>(dims_.dim(wires[i]));
    }

    // Enumerate the non-operand subspace with an odometer over the other
    // wires. To avoid a digit odometer over N-k wires per step, we instead
    // iterate over all indices whose operand digits are all zero. Those are
    // exactly the base offsets.
    const int n = dims_.num_wires();
    std::vector<int> other;
    other.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
        bool is_operand = false;
        for (const int t : wires) {
            if (t == w) {
                is_operand = true;
                break;
            }
        }
        if (!is_operand) {
            other.push_back(w);
        }
    }

    std::vector<Complex> in(block), out(block);
    std::vector<int> odo(other.size(), 0);
    Index base = 0;
    const Index outer_count = dims_.size() / block;
    for (Index step = 0;; ++step) {
        // Gather.
        for (Index b = 0; b < block; ++b) {
            Index off = 0;
            Index rem = b;
            for (int i = 0; i < k; ++i) {
                const Index digit =
                    rem / local_stride[static_cast<std::size_t>(i)];
                rem %= local_stride[static_cast<std::size_t>(i)];
                off += digit * wire_stride[static_cast<std::size_t>(i)];
            }
            in[b] = amps_[base + off];
        }
        // Multiply.
        for (Index r = 0; r < block; ++r) {
            Complex acc(0, 0);
            const Complex* row = &op.data()[r * block];
            for (Index c = 0; c < block; ++c) {
                acc += row[c] * in[c];
            }
            out[r] = acc;
        }
        // Scatter.
        for (Index b = 0; b < block; ++b) {
            Index off = 0;
            Index rem = b;
            for (int i = 0; i < k; ++i) {
                const Index digit =
                    rem / local_stride[static_cast<std::size_t>(i)];
                rem %= local_stride[static_cast<std::size_t>(i)];
                off += digit * wire_stride[static_cast<std::size_t>(i)];
            }
            amps_[base + off] = out[b];
        }
        if (step + 1 >= outer_count) {
            break;
        }
        // Advance odometer over non-operand wires (least significant last).
        for (std::size_t i = other.size(); i-- > 0;) {
            const int w = other[i];
            if (++odo[i] < dims_.dim(w)) {
                base += dims_.stride(w);
                break;
            }
            base -= static_cast<Index>(odo[i] - 1) * dims_.stride(w);
            odo[i] = 0;
        }
    }
}

void
StateVector::apply_diag1(const std::vector<Complex>& diag, int wire)
{
    const int d = dims_.dim(wire);
    if (static_cast<int>(diag.size()) != d) {
        throw std::invalid_argument("apply_diag1: diagonal size mismatch");
    }
    const Index stride = dims_.stride(wire);
    const Index run = stride;  // contiguous run per digit value
    const Index period = stride * static_cast<Index>(d);
    const Index total = dims_.size();
    for (Index start = 0; start < total; start += period) {
        for (int v = 0; v < d; ++v) {
            const Complex f = diag[static_cast<std::size_t>(v)];
            if (f == Complex(1, 0)) {
                continue;
            }
            Complex* p = &amps_[start + static_cast<Index>(v) * stride];
            for (Index i = 0; i < run; ++i) {
                p[i] *= f;
            }
        }
    }
}

void
StateVector::apply_product_diag(
    const std::vector<std::vector<Complex>>& factors)
{
    const int n = dims_.num_wires();
    if (static_cast<int>(factors.size()) != n) {
        throw std::invalid_argument("apply_product_diag: factor count");
    }
    // Odometer over digits (wire n-1 least significant); maintain the
    // running product incrementally: one multiply on digit increment, and
    // on rollover divide out the wire's accumulated product.
    std::vector<int> odo(static_cast<std::size_t>(n), 0);
    Complex cur(1, 0);
    for (int w = 0; w < n; ++w) {
        cur *= factors[static_cast<std::size_t>(w)][0];
    }
    const Index total = dims_.size();
    for (Index idx = 0;; ++idx) {
        amps_[idx] *= cur;
        if (idx + 1 >= total) {
            break;
        }
        for (int w = n - 1;; --w) {
            const std::size_t uw = static_cast<std::size_t>(w);
            if (++odo[uw] < dims_.dim(w)) {
                cur *= factors[uw][static_cast<std::size_t>(odo[uw])] /
                       factors[uw][static_cast<std::size_t>(odo[uw] - 1)];
                break;
            }
            cur *= factors[uw][0] /
                   factors[uw][static_cast<std::size_t>(odo[uw] - 1)];
            odo[uw] = 0;
        }
    }
}

Real
StateVector::scale_by_table(const std::vector<std::uint16_t>& key,
                            const std::vector<Real>& scale)
{
    if (key.size() != amps_.size()) {
        throw std::invalid_argument("scale_by_table: key size mismatch");
    }
    Real norm_sq = 0;
    for (Index i = 0; i < amps_.size(); ++i) {
        amps_[i] *= scale[key[i]];
        norm_sq += std::norm(amps_[i]);
    }
    return norm_sq;
}

Complex
StateVector::inner(const StateVector& other) const
{
    if (!(dims_ == other.dims_)) {
        throw std::invalid_argument("inner: dimension mismatch");
    }
    Complex acc(0, 0);
    for (Index i = 0; i < amps_.size(); ++i) {
        acc += std::conj(amps_[i]) * other.amps_[i];
    }
    return acc;
}

Real
StateVector::norm() const
{
    Real acc = 0;
    for (const Complex& a : amps_) {
        acc += std::norm(a);
    }
    return std::sqrt(acc);
}

bool
StateVector::normalize()
{
    const Real n = norm();
    if (n <= 0 || !std::isfinite(n)) {
        return false;
    }
    const Real inv = 1.0 / n;
    for (Complex& a : amps_) {
        a *= inv;
    }
    return true;
}

Real
StateVector::population(int wire, int level) const
{
    const Index stride = dims_.stride(wire);
    const int d = dims_.dim(wire);
    const Index period = stride * static_cast<Index>(d);
    const Index total = dims_.size();
    Real acc = 0;
    for (Index start = 0; start < total; start += period) {
        const Complex* p = &amps_[start + static_cast<Index>(level) * stride];
        for (Index i = 0; i < stride; ++i) {
            acc += std::norm(p[i]);
        }
    }
    return acc;
}

std::vector<Real>
StateVector::populations(int wire) const
{
    const Index stride = dims_.stride(wire);
    const int d = dims_.dim(wire);
    const Index period = stride * static_cast<Index>(d);
    const Index total = dims_.size();
    std::vector<Real> acc(static_cast<std::size_t>(d), 0.0);
    for (Index start = 0; start < total; start += period) {
        for (int v = 0; v < d; ++v) {
            const Complex* p =
                &amps_[start + static_cast<Index>(v) * stride];
            Real s = 0;
            for (Index i = 0; i < stride; ++i) {
                s += std::norm(p[i]);
            }
            acc[static_cast<std::size_t>(v)] += s;
        }
    }
    return acc;
}

Real
StateVector::fidelity(const StateVector& other) const
{
    return std::norm(inner(other));
}

}  // namespace qd
