/**
 * @file gate.h
 * Immutable gate flyweight: unitary matrix, operand dimensions, and an
 * optional classical (permutation) action.
 *
 * The classical action is the key to the paper's fast verification path
 * (Section 6): circuits built purely from permutation gates (X01, X+1,
 * controlled variants, ...) can be verified on classical basis inputs in
 * O(width) per input rather than O(d^N).
 */
#ifndef QDSIM_GATE_H
#define QDSIM_GATE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qdsim/basis.h"
#include "qdsim/matrix.h"

namespace qd {

/**
 * Structure of a gate that acts as an inner operator on its trailing
 * operands iff each of the first `num_controls` operands holds a fixed
 * activation value, and as the identity otherwise. Detected from the matrix
 * at construction; the execution engine's controlled-subspace kernel uses
 * it to touch only the amplitudes where the controls are active.
 */
struct ControlledStructure {
    int num_controls = 0;
    /** Activation level of each leading (control) operand. */
    std::vector<int> control_values;
    /** The operator applied to the trailing operands when active. */
    Matrix inner;
};

/**
 * A k-local gate on operands with given dimensions.
 *
 * Gates have value semantics but share an immutable payload, so copies are
 * cheap and circuits can hold millions of operations.
 */
class Gate {
  public:
    Gate() = default;

    /**
     * Creates a gate from its unitary. If the matrix is a permutation matrix
     * (entries 0/1), a classical action is derived automatically.
     *
     * @param name Human-readable name used in rendering and debugging.
     * @param dims Per-operand dimensions; matrix must be square of size
     *             prod(dims).
     * @param matrix The unitary, operand 0 most significant.
     */
    Gate(std::string name, std::vector<int> dims, Matrix matrix);

    /** True if default-constructed. */
    bool empty() const { return payload_ == nullptr; }

    const std::string& name() const { return payload_->name; }
    int arity() const { return static_cast<int>(payload_->dims.size()); }
    const std::vector<int>& dims() const { return payload_->dims; }
    const Matrix& matrix() const { return payload_->matrix; }

    /** Product of operand dimensions. */
    Index block_size() const {
        return static_cast<Index>(payload_->matrix.rows());
    }

    /** True if this gate acts as a classical permutation on basis states. */
    bool is_permutation() const { return payload_->perm.has_value(); }

    /** Classical action: local basis index in, local basis index out.
     *  Only valid if is_permutation(). */
    Index permute(Index local_in) const {
        return (*payload_->perm)[local_in];
    }

    /** True if the matrix is diagonal (phase-only gates). */
    bool is_diagonal_gate() const { return payload_->diagonal; }

    /**
     * True if the matrix was recognised as identity-except-one-control-
     * subspace (see ControlledStructure). Only derived for non-permutation,
     * non-diagonal gates of arity >= 2, where the specialized kernels
     * cannot already exploit a cheaper structure.
     */
    bool has_controlled_structure() const {
        return payload_->ctrl.has_value();
    }

    /** Cached controlled structure; only valid if
     *  has_controlled_structure(). */
    const ControlledStructure& controlled_structure() const {
        return *payload_->ctrl;
    }

    /** Gate with the adjoint unitary. */
    Gate inverse() const;

    /**
     * Controlled version of this gate. Controls are prepended as the first
     * operands; the gate applies iff control i is in basis state values[i].
     *
     * @param control_dims   Dimension of each control wire.
     * @param control_values Activation level of each control
     *                       (0 <= value < dim). This models the paper's
     *                       coloured controls: |1>-controls and |2>-controls.
     */
    Gate controlled(const std::vector<int>& control_dims,
                    const std::vector<int>& control_values) const;

    /** Single-control convenience overload. */
    Gate controlled(int control_dim, int control_value) const;

  private:
    struct Payload {
        std::string name;
        std::vector<int> dims;
        Matrix matrix;
        std::optional<std::vector<Index>> perm;
        bool diagonal = false;
        std::optional<ControlledStructure> ctrl;
    };

    std::shared_ptr<const Payload> payload_;
};

/** An operation = gate + the wires it acts on (in gate operand order). */
struct Operation {
    Gate gate;
    std::vector<int> wires;
};

}  // namespace qd

#endif  // QDSIM_GATE_H
