#include "qdsim/gate.h"

#include <cmath>
#include <stdexcept>

namespace qd {

namespace {

/** Attempts to read `m` as a permutation matrix; empty optional if not. */
std::optional<std::vector<Index>>
derive_permutation(const Matrix& m)
{
    const std::size_t n = m.rows();
    std::vector<Index> perm(n, 0);
    std::vector<bool> hit(n, false);
    for (std::size_t col = 0; col < n; ++col) {
        int ones = 0;
        std::size_t row_of_one = 0;
        for (std::size_t row = 0; row < n; ++row) {
            const Complex v = m(row, col);
            const Real mag = std::abs(v);
            if (mag > kTol) {
                if (std::abs(v - Complex(1, 0)) > kTol) {
                    return std::nullopt;  // entry not exactly 1
                }
                ++ones;
                row_of_one = row;
            }
        }
        if (ones != 1 || hit[row_of_one]) {
            return std::nullopt;
        }
        hit[row_of_one] = true;
        // Column = input basis state, row = output basis state.
        perm[col] = static_cast<Index>(row_of_one);
    }
    return perm;
}

/**
 * Attempts to read `m` as identity-except-one-control-subspace: for some
 * split after the first `c` operands, the matrix is block diagonal in the
 * control index with identity blocks everywhere except a single active
 * block. Prefers the largest working `c` (smallest active subspace).
 */
std::optional<ControlledStructure>
derive_controlled_structure(const Matrix& m, const std::vector<int>& dims)
{
    const int k = static_cast<int>(dims.size());
    const std::size_t block = m.rows();
    for (int c = k - 1; c >= 1; --c) {
        std::size_t ctrl_block = 1;
        for (int i = 0; i < c; ++i) {
            ctrl_block *= static_cast<std::size_t>(dims[static_cast<
                std::size_t>(i)]);
        }
        const std::size_t inner = block / ctrl_block;
        bool ok = true;
        std::size_t active = ctrl_block;  // sentinel: none found yet
        for (std::size_t r = 0; ok && r < block; ++r) {
            for (std::size_t col = 0; col < block; ++col) {
                const std::size_t p = r / inner, q = col / inner;
                const Complex v = m(r, col);
                if (p != q) {
                    if (std::abs(v) > kTol) {
                        ok = false;
                        break;
                    }
                    continue;
                }
                const Complex expect =
                    r == col ? Complex(1, 0) : Complex(0, 0);
                if (std::abs(v - expect) > kTol) {
                    if (active == ctrl_block) {
                        active = p;
                    } else if (active != p) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if (!ok || active == ctrl_block) {
            continue;  // no such split, or the gate is the identity
        }
        ControlledStructure cs;
        cs.num_controls = c;
        cs.control_values.resize(static_cast<std::size_t>(c));
        std::size_t rem = active;
        for (int i = c; i-- > 0;) {
            const std::size_t d =
                static_cast<std::size_t>(dims[static_cast<std::size_t>(i)]);
            cs.control_values[static_cast<std::size_t>(i)] =
                static_cast<int>(rem % d);
            rem /= d;
        }
        cs.inner = Matrix(inner, inner);
        for (std::size_t r = 0; r < inner; ++r) {
            for (std::size_t col = 0; col < inner; ++col) {
                cs.inner(r, col) = m(active * inner + r, active * inner + col);
            }
        }
        return cs;
    }
    return std::nullopt;
}

}  // namespace

Gate::Gate(std::string name, std::vector<int> dims, Matrix matrix) {
    Index block = 1;
    for (const int d : dims) {
        if (d < 2) {
            throw std::invalid_argument("Gate: operand dim must be >= 2");
        }
        block *= static_cast<Index>(d);
    }
    if (matrix.rows() != block || matrix.cols() != block) {
        throw std::invalid_argument("Gate '" + name +
                                    "': matrix size does not match dims");
    }
    auto p = std::make_shared<Payload>();
    p->name = std::move(name);
    p->dims = std::move(dims);
    p->diagonal = matrix.is_diagonal();
    p->perm = derive_permutation(matrix);
    if (!p->perm && !p->diagonal && p->dims.size() >= 2) {
        p->ctrl = derive_controlled_structure(matrix, p->dims);
    }
    p->matrix = std::move(matrix);
    payload_ = std::move(p);
}

Gate
Gate::inverse() const
{
    const std::string base = payload_->name;
    std::string inv_name;
    constexpr const char* kDagger = "†";
    if (base.size() >= 3 && base.compare(base.size() - 3, 3, kDagger) == 0) {
        inv_name = base.substr(0, base.size() - 3);
    } else {
        inv_name = base + kDagger;
    }
    return Gate(inv_name, payload_->dims, payload_->matrix.dagger());
}

Gate
Gate::controlled(const std::vector<int>& control_dims,
                 const std::vector<int>& control_values) const
{
    if (control_dims.size() != control_values.size()) {
        throw std::invalid_argument(
            "Gate::controlled: dims/values size mismatch");
    }
    Index ctrl_block = 1;
    for (std::size_t i = 0; i < control_dims.size(); ++i) {
        if (control_values[i] < 0 || control_values[i] >= control_dims[i]) {
            throw std::invalid_argument(
                "Gate::controlled: control value out of range");
        }
        ctrl_block *= static_cast<Index>(control_dims[i]);
    }
    const Index inner = block_size();
    const Index total = ctrl_block * inner;

    // The activating control pattern as a packed index.
    Index active = 0;
    for (std::size_t i = 0; i < control_dims.size(); ++i) {
        active = active * static_cast<Index>(control_dims[i]) +
                 static_cast<Index>(control_values[i]);
    }

    Matrix m = Matrix::identity(total);
    for (Index r = 0; r < inner; ++r) {
        for (Index c = 0; c < inner; ++c) {
            m(active * inner + r, active * inner + c) = payload_->matrix(r, c);
        }
    }

    std::string name = "C";
    for (std::size_t i = 0; i < control_values.size(); ++i) {
        name += "[";
        name += std::to_string(control_values[i]);
        name += "]";
    }
    name += payload_->name;

    std::vector<int> dims = control_dims;
    dims.insert(dims.end(), payload_->dims.begin(), payload_->dims.end());
    return Gate(std::move(name), std::move(dims), std::move(m));
}

Gate
Gate::controlled(int control_dim, int control_value) const
{
    return controlled(std::vector<int>{control_dim},
                      std::vector<int>{control_value});
}

}  // namespace qd
