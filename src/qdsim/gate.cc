#include "qdsim/gate.h"

#include <cmath>
#include <stdexcept>

namespace qd {

namespace {

/** Attempts to read `m` as a permutation matrix; empty optional if not. */
std::optional<std::vector<Index>>
derive_permutation(const Matrix& m)
{
    const std::size_t n = m.rows();
    std::vector<Index> perm(n, 0);
    std::vector<bool> hit(n, false);
    for (std::size_t col = 0; col < n; ++col) {
        int ones = 0;
        std::size_t row_of_one = 0;
        for (std::size_t row = 0; row < n; ++row) {
            const Complex v = m(row, col);
            const Real mag = std::abs(v);
            if (mag > kTol) {
                if (std::abs(v - Complex(1, 0)) > kTol) {
                    return std::nullopt;  // entry not exactly 1
                }
                ++ones;
                row_of_one = row;
            }
        }
        if (ones != 1 || hit[row_of_one]) {
            return std::nullopt;
        }
        hit[row_of_one] = true;
        // Column = input basis state, row = output basis state.
        perm[col] = static_cast<Index>(row_of_one);
    }
    return perm;
}

}  // namespace

Gate::Gate(std::string name, std::vector<int> dims, Matrix matrix) {
    Index block = 1;
    for (const int d : dims) {
        if (d < 2) {
            throw std::invalid_argument("Gate: operand dim must be >= 2");
        }
        block *= static_cast<Index>(d);
    }
    if (matrix.rows() != block || matrix.cols() != block) {
        throw std::invalid_argument("Gate '" + name +
                                    "': matrix size does not match dims");
    }
    auto p = std::make_shared<Payload>();
    p->name = std::move(name);
    p->dims = std::move(dims);
    p->diagonal = matrix.is_diagonal();
    p->perm = derive_permutation(matrix);
    p->matrix = std::move(matrix);
    payload_ = std::move(p);
}

Gate
Gate::inverse() const
{
    const std::string base = payload_->name;
    std::string inv_name;
    constexpr const char* kDagger = "†";
    if (base.size() >= 3 && base.compare(base.size() - 3, 3, kDagger) == 0) {
        inv_name = base.substr(0, base.size() - 3);
    } else {
        inv_name = base + kDagger;
    }
    return Gate(inv_name, payload_->dims, payload_->matrix.dagger());
}

Gate
Gate::controlled(const std::vector<int>& control_dims,
                 const std::vector<int>& control_values) const
{
    if (control_dims.size() != control_values.size()) {
        throw std::invalid_argument(
            "Gate::controlled: dims/values size mismatch");
    }
    Index ctrl_block = 1;
    for (std::size_t i = 0; i < control_dims.size(); ++i) {
        if (control_values[i] < 0 || control_values[i] >= control_dims[i]) {
            throw std::invalid_argument(
                "Gate::controlled: control value out of range");
        }
        ctrl_block *= static_cast<Index>(control_dims[i]);
    }
    const Index inner = block_size();
    const Index total = ctrl_block * inner;

    // The activating control pattern as a packed index.
    Index active = 0;
    for (std::size_t i = 0; i < control_dims.size(); ++i) {
        active = active * static_cast<Index>(control_dims[i]) +
                 static_cast<Index>(control_values[i]);
    }

    Matrix m = Matrix::identity(total);
    for (Index r = 0; r < inner; ++r) {
        for (Index c = 0; c < inner; ++c) {
            m(active * inner + r, active * inner + c) = payload_->matrix(r, c);
        }
    }

    std::string name = "C";
    for (std::size_t i = 0; i < control_values.size(); ++i) {
        name += "[";
        name += std::to_string(control_values[i]);
        name += "]";
    }
    name += payload_->name;

    std::vector<int> dims = control_dims;
    dims.insert(dims.end(), payload_->dims.begin(), payload_->dims.end());
    return Gate(std::move(name), std::move(dims), std::move(m));
}

Gate
Gate::controlled(int control_dim, int control_value) const
{
    return controlled(std::vector<int>{control_dim},
                      std::vector<int>{control_value});
}

}  // namespace qd
