/**
 * @file rng.h
 * Reproducible random-number generation for simulation trials.
 *
 * A thin wrapper over a 64-bit Mersenne Twister with helpers used by the
 * trajectory engine (weighted draws) and by Haar-random state generation.
 * Independent streams for parallel trials are derived with splitmix64 so
 * results are reproducible for a given master seed regardless of thread
 * scheduling.
 */
#ifndef QDSIM_RNG_H
#define QDSIM_RNG_H

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "qdsim/types.h"

namespace qd {

/** Deterministic stream-splitting hash (splitmix64). */
std::uint64_t splitmix64(std::uint64_t x);

/** Random source with convenience draws. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Derives an independent child stream; child i of a given parent seed
     *  is deterministic. */
    Rng child(std::uint64_t stream) const;

    /** Uniform real in [0, 1). */
    Real uniform();

    /** Uniform integer in [0, n).
     *  @throws std::invalid_argument if n == 0 (an empty range used to
     *          underflow into a full-range 64-bit draw). */
    std::uint64_t uniform_int(std::uint64_t n);

    /** Standard normal draw. */
    Real gaussian();

    /** Standard complex Gaussian (independent real/imag N(0,1)). */
    Complex complex_gaussian();

    /**
     * Draws an index from unnormalised non-negative weights.
     * Returns std::nullopt when the weights are empty or their total is
     * zero (or negative): there is no valid arm to draw, and callers must
     * handle that explicitly. (Returning the last arm here used to let the
     * trajectory engine "draw" a zero-population damping jump from a
     * numerically-all-zero weight vector and die renormalising the
     * resulting zero state.) No randomness is consumed in that case.
     */
    std::optional<std::size_t> weighted_draw(const std::vector<Real>& weights);

    std::mt19937_64& engine() { return engine_; }

  private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
    std::normal_distribution<Real> normal_{0.0, 1.0};
};

}  // namespace qd

#endif  // QDSIM_RNG_H
