/**
 * @file state_vector.h
 * Dense mixed-radix state vector with Einstein-summation-style k-local
 * operator application.
 *
 * This is the workhorse of the simulator (paper Section 6.2): gates are
 * applied by gathering/scattering the d^k amplitudes of each operand block,
 * never materialising the d^N x d^N circuit matrix. Memory and time per gate
 * are O(d^N * d^k).
 */
#ifndef QDSIM_STATE_VECTOR_H
#define QDSIM_STATE_VECTOR_H

#include <span>
#include <vector>

#include "qdsim/basis.h"
#include "qdsim/matrix.h"

namespace qd {

/**
 * State vector over a mixed-radix register.
 *
 * Amplitudes are stored densely indexed per WireDims. Supports application
 * of arbitrary (not necessarily unitary) k-local operators, which the noise
 * engine uses for Kraus jump operators followed by renormalisation.
 */
class StateVector {
  public:
    /** Initialises to |00...0>. */
    explicit StateVector(WireDims dims);

    /** Initialises to the classical basis state given by `digits`. */
    StateVector(WireDims dims, const std::vector<int>& digits);

    /**
     * Adopts an explicit amplitude vector (not renormalised). Used by the
     * batched execution engine to materialise one lane of a
     * exec::BatchedStateVector as a standalone state. (A named factory, not
     * a constructor: a braced list of ints must keep selecting the
     * basis-state constructor above.)
     * @throws std::invalid_argument if amps.size() != dims.size().
     */
    static StateVector from_amplitudes(WireDims dims,
                                       std::vector<Complex> amps);

    const WireDims& dims() const { return dims_; }
    Index size() const { return dims_.size(); }

    Complex& operator[](Index i) { return amps_[i]; }
    const Complex& operator[](Index i) const { return amps_[i]; }
    const std::vector<Complex>& amplitudes() const { return amps_; }
    std::vector<Complex>& amplitudes() { return amps_; }

    /**
     * Applies a k-local operator to the given wires.
     *
     * @param op    A (prod dims of wires) square matrix in the basis ordered
     *              with wires[0] as the most significant digit.
     * @param wires Distinct wire indices the operator acts on.
     * @throws std::invalid_argument if the operator size does not match the
     *         operand dims, or if wires are out of range or not distinct
     *         (a duplicate wire would silently corrupt the state).
     */
    void apply(const Matrix& op, std::span<const int> wires);

    /** Applies a diagonal single-wire operator (fast path for no-jump
     *  evolution and phase noise). `diag` has dim(wire) entries. */
    void apply_diag1(const std::vector<Complex>& diag, int wire);

    /**
     * Applies the product of per-wire unit-modulus diagonal factors in a
     * single pass: amp[idx] *= prod_w factors[w][digit_w(idx)].
     * `factors[w]` must have dim(w) entries of modulus ~1. Implemented
     * with an incremental odometer so the cost is O(size) regardless of
     * wire count (used for fused coherent dephasing).
     */
    void apply_product_diag(const std::vector<std::vector<Complex>>& factors);

    /**
     * Multiplies amplitude idx by scale[level_counts_key(idx)] in one pass
     * and returns the resulting squared norm. `key` maps each basis index
     * to a small table key (e.g. packed excited-level counts); used for the
     * fused no-jump amplitude-damping step. key.size() must equal size().
     */
    Real scale_by_table(const std::vector<std::uint16_t>& key,
                        const std::vector<Real>& scale);

    /** <this|other>; registers must have equal dims. */
    Complex inner(const StateVector& other) const;

    /** L2 norm. */
    Real norm() const;

    /**
     * Scales amplitudes so norm() == 1. Returns false — leaving the state
     * untouched — when the norm is zero or non-finite, which signals a
     * fully-damped or otherwise invalid state; callers that cannot
     * tolerate that (e.g. trajectory jump branches) must check the
     * result instead of silently continuing with an unnormalised state.
     */
    [[nodiscard]] bool normalize();

    /** Probability that `wire` is measured in `level`:
     *  sum of |amp|^2 over basis states with that digit. */
    Real population(int wire, int level) const;

    /** Per-level populations of a wire (length dim(wire), sums to norm^2). */
    std::vector<Real> populations(int wire) const;

    /** Squared overlap |<this|other>|^2, the fidelity for pure states. */
    Real fidelity(const StateVector& other) const;

  private:
    WireDims dims_;
    std::vector<Complex> amps_;
};

}  // namespace qd

#endif  // QDSIM_STATE_VECTOR_H
