#include "qdsim/rng.h"

#include <stdexcept>

namespace qd {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng
Rng::child(std::uint64_t stream) const
{
    return Rng(splitmix64(seed_ ^ splitmix64(stream + 0x517CC1B727220A95ull)));
}

Real
Rng::uniform()
{
    return std::uniform_real_distribution<Real>(0.0, 1.0)(engine_);
}

std::uint64_t
Rng::uniform_int(std::uint64_t n)
{
    if (n == 0) {
        throw std::invalid_argument("Rng::uniform_int: empty range (n == 0)");
    }
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
}

Real
Rng::gaussian()
{
    return normal_(engine_);
}

Complex
Rng::complex_gaussian()
{
    const Real re = normal_(engine_);
    const Real im = normal_(engine_);
    return Complex(re, im);
}

std::optional<std::size_t>
Rng::weighted_draw(const std::vector<Real>& weights)
{
    Real total = 0;
    for (const Real w : weights) {
        total += w;
    }
    if (total <= 0) {
        return std::nullopt;
    }
    Real u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u <= 0) {
            return i;
        }
    }
    return weights.size() - 1;
}

}  // namespace qd
