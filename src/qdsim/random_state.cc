#include "qdsim/random_state.h"

#include <cmath>
#include <stdexcept>

namespace qd {

StateVector
haar_random_state(const WireDims& dims, Rng& rng)
{
    StateVector psi(dims);
    for (Index i = 0; i < psi.size(); ++i) {
        psi[i] = rng.complex_gaussian();
    }
    if (!psi.normalize()) {
        throw std::runtime_error(
            "haar_random_state: degenerate zero-norm draw");
    }
    return psi;
}

StateVector
haar_random_qubit_subspace_state(const WireDims& dims, Rng& rng)
{
    StateVector psi(dims);
    psi[0] = Complex(0, 0);
    const int n = dims.num_wires();
    // Enumerate only indices with all digits < 2 via a binary odometer.
    std::vector<int> digits(static_cast<std::size_t>(n), 0);
    Index idx = 0;
    for (;;) {
        psi[idx] = rng.complex_gaussian();
        // Advance binary odometer over mixed-radix strides.
        int w = n - 1;
        for (; w >= 0; --w) {
            const std::size_t uw = static_cast<std::size_t>(w);
            if (digits[uw] == 0) {
                digits[uw] = 1;
                idx += dims.stride(w);
                break;
            }
            digits[uw] = 0;
            idx -= dims.stride(w);
        }
        if (w < 0) {
            break;
        }
    }
    if (!psi.normalize()) {
        throw std::runtime_error(
            "haar_random_qubit_subspace_state: degenerate zero-norm draw");
    }
    return psi;
}

Matrix
haar_random_unitary(std::size_t n, Rng& rng)
{
    // QR via modified Gram-Schmidt on a Ginibre matrix; normalise the phase
    // of each column's leading entry so R has a positive diagonal (required
    // for Haar correctness).
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.complex_gaussian();
        }
    }
    Matrix q(n, n);
    for (std::size_t col = 0; col < n; ++col) {
        std::vector<Complex> v(n);
        for (std::size_t i = 0; i < n; ++i) {
            v[i] = a(i, col);
        }
        for (std::size_t prev = 0; prev < col; ++prev) {
            Complex dot(0, 0);
            for (std::size_t i = 0; i < n; ++i) {
                dot += std::conj(q(i, prev)) * v[i];
            }
            for (std::size_t i = 0; i < n; ++i) {
                v[i] -= dot * q(i, prev);
            }
        }
        Real nrm = 0;
        for (const Complex& x : v) {
            nrm += std::norm(x);
        }
        nrm = std::sqrt(nrm);
        for (std::size_t i = 0; i < n; ++i) {
            q(i, col) = v[i] / nrm;
        }
    }
    return q;
}

}  // namespace qd
