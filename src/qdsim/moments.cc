#include "qdsim/moments.h"

#include <algorithm>

namespace qd {

std::vector<Moment>
schedule_asap(const Circuit& circuit)
{
    std::vector<Moment> moments;
    std::vector<int> frontier(static_cast<std::size_t>(circuit.num_wires()),
                              -1);
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        int earliest = -1;
        for (const int w : ops[i].wires) {
            earliest =
                std::max(earliest, frontier[static_cast<std::size_t>(w)]);
        }
        const int slot = earliest + 1;
        if (static_cast<std::size_t>(slot) >= moments.size()) {
            moments.resize(static_cast<std::size_t>(slot) + 1);
        }
        Moment& m = moments[static_cast<std::size_t>(slot)];
        m.op_indices.push_back(i);
        if (ops[i].gate.arity() >= 2) {
            m.has_multi_qudit = true;
        }
        for (const int w : ops[i].wires) {
            frontier[static_cast<std::size_t>(w)] = slot;
        }
    }
    return moments;
}

int
circuit_depth(const Circuit& circuit)
{
    std::vector<int> frontier(static_cast<std::size_t>(circuit.num_wires()),
                              0);
    for (const Operation& op : circuit.ops()) {
        int earliest = 0;
        for (const int w : op.wires) {
            earliest =
                std::max(earliest, frontier[static_cast<std::size_t>(w)]);
        }
        for (const int w : op.wires) {
            frontier[static_cast<std::size_t>(w)] = earliest + 1;
        }
    }
    int depth = 0;
    for (const int f : frontier) {
        depth = std::max(depth, f);
    }
    return depth;
}

}  // namespace qd
