#include "qdsim/basis.h"

#include <stdexcept>

namespace qd {

WireDims::WireDims(std::vector<int> dims) : dims_(std::move(dims)) {
    strides_.resize(dims_.size());
    size_ = 1;
    for (std::size_t i = dims_.size(); i-- > 0;) {
        if (dims_[i] < 2) {
            throw std::invalid_argument("WireDims: dimension must be >= 2");
        }
        strides_[i] = size_;
        size_ *= static_cast<Index>(dims_[i]);
    }
}

WireDims
WireDims::uniform(int n, int d)
{
    return WireDims(std::vector<int>(static_cast<std::size_t>(n), d));
}

Index
WireDims::pack(const std::vector<int>& digits) const
{
    if (digits.size() != dims_.size()) {
        throw std::invalid_argument("WireDims::pack: digit count mismatch");
    }
    Index idx = 0;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (digits[i] < 0 || digits[i] >= dims_[i]) {
            throw std::out_of_range("WireDims::pack: digit out of range");
        }
        idx += static_cast<Index>(digits[i]) * strides_[i];
    }
    return idx;
}

std::vector<int>
WireDims::unpack(Index index) const
{
    std::vector<int> digits(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        digits[i] = static_cast<int>((index / strides_[i]) %
                                     static_cast<Index>(dims_[i]));
    }
    return digits;
}

}  // namespace qd
