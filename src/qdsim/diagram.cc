#include "qdsim/diagram.h"

#include <algorithm>
#include <vector>

#include "qdsim/moments.h"

namespace qd {

namespace {

/** Splits a controlled-gate name "C[2][1]X+1" into control values and the
 *  base name; returns false for non-controlled names. */
bool
parse_controls(const std::string& name, std::vector<int>* values,
               std::string* base)
{
    if (name.empty() || name[0] != 'C' || name.size() < 4 ||
        name[1] != '[') {
        return false;
    }
    std::size_t pos = 1;
    while (pos < name.size() && name[pos] == '[') {
        const std::size_t close = name.find(']', pos);
        if (close == std::string::npos) {
            return false;
        }
        values->push_back(std::atoi(name.substr(pos + 1,
                                                close - pos - 1).c_str()));
        pos = close + 1;
    }
    if (values->empty() || pos >= name.size()) {
        return false;
    }
    *base = name.substr(pos);
    return true;
}

/** Per-wire token of one operation ("" if the wire is not an operand). */
std::vector<std::string>
op_tokens(const Circuit& circuit, const Operation& op)
{
    std::vector<std::string> tokens(
        static_cast<std::size_t>(circuit.num_wires()));
    std::vector<int> values;
    std::string base;
    if (op.gate.arity() >= 2 &&
        parse_controls(op.gate.name(), &values, &base) &&
        values.size() + 1 <= op.wires.size()) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            tokens[static_cast<std::size_t>(op.wires[i])] =
                std::to_string(values[i]);
        }
        for (std::size_t i = values.size(); i < op.wires.size(); ++i) {
            tokens[static_cast<std::size_t>(op.wires[i])] = base;
        }
    } else {
        for (const int w : op.wires) {
            tokens[static_cast<std::size_t>(w)] = op.gate.name();
        }
    }
    return tokens;
}

}  // namespace

std::string
render_diagram(const Circuit& circuit, const DiagramOptions& options)
{
    const int n = circuit.num_wires();
    // Column = list of ops (a moment, or a single op).
    std::vector<std::vector<std::size_t>> columns;
    if (options.by_moments) {
        for (const Moment& m : schedule_asap(circuit)) {
            columns.push_back(m.op_indices);
        }
    } else {
        for (std::size_t i = 0; i < circuit.num_ops(); ++i) {
            columns.push_back({i});
        }
    }
    const bool truncated =
        static_cast<int>(columns.size()) > options.max_columns;
    if (truncated) {
        columns.resize(static_cast<std::size_t>(options.max_columns));
    }

    // Row text per wire; start with labels.
    std::vector<std::string> rows(static_cast<std::size_t>(n));
    std::size_t label_width = 0;
    for (int w = 0; w < n; ++w) {
        rows[static_cast<std::size_t>(w)] =
            options.wire_prefix + std::to_string(w) + ": ";
        label_width = std::max(label_width,
                               rows[static_cast<std::size_t>(w)].size());
    }
    for (auto& r : rows) {
        r.resize(label_width, ' ');
    }

    for (const auto& col : columns) {
        std::vector<std::string> tokens(static_cast<std::size_t>(n));
        std::vector<bool> in_span(static_cast<std::size_t>(n), false);
        for (const std::size_t idx : col) {
            const Operation& op = circuit.ops()[idx];
            const auto t = op_tokens(circuit, op);
            int lo = n, hi = -1;
            for (const int w : op.wires) {
                lo = std::min(lo, w);
                hi = std::max(hi, w);
            }
            for (int w = 0; w < n; ++w) {
                const std::size_t uw = static_cast<std::size_t>(w);
                if (!t[uw].empty()) {
                    tokens[uw] = t[uw];
                } else if (w > lo && w < hi) {
                    in_span[uw] = true;
                }
            }
        }
        std::size_t width = 1;
        for (const auto& t : tokens) {
            width = std::max(width, t.size());
        }
        for (int w = 0; w < n; ++w) {
            const std::size_t uw = static_cast<std::size_t>(w);
            std::string cell;
            if (!tokens[uw].empty()) {
                cell = tokens[uw];
            } else if (in_span[uw]) {
                cell = "|";
            }
            // Centre the cell in '-' padding with one '-' margin each side.
            const std::size_t pad = width - cell.size();
            const std::size_t left = pad / 2 + 1;
            const std::size_t right = pad - pad / 2 + 1;
            rows[uw] += std::string(left, '-') + cell +
                        std::string(right, '-');
        }
    }
    std::string out;
    for (int w = 0; w < n; ++w) {
        out += rows[static_cast<std::size_t>(w)];
        if (truncated) {
            out += "...";
        }
        out += "\n";
    }
    return out;
}

}  // namespace qd
