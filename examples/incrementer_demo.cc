/**
 * Incrementer demo (paper Section 5.3, Figure 7): an 8-bit ancilla-free
 * qutrit counter. Prints the Figure-7 gate list, then counts 0..20 by
 * repeated classical application, then shows the log^2-depth scaling.
 *
 *   ./build/examples/incrementer_demo
 */
#include <cstdio>

#include "constructions/incrementer.h"
#include "qdsim/classical.h"

using namespace qd;
using namespace qd::ctor;

int
main()
{
    std::printf("-- Figure 7: the N=8 qutrit incrementer --\n");
    const Circuit fig7 = build_qutrit_incrementer(
        8, IncGranularity::kAtomic);
    for (const Operation& op : fig7.ops()) {
        std::printf("  %-22s wires", op.gate.name().c_str());
        for (const int w : op.wires) {
            std::printf(" a%d", w);
        }
        std::printf("\n");
    }

    std::printf("\n-- counting with the circuit (LSB = a0) --\n  ");
    std::vector<int> state(8, 0);
    for (int step = 0; step <= 20; ++step) {
        int value = 0;
        for (int b = 0; b < 8; ++b) {
            value |= state[static_cast<std::size_t>(b)] << b;
        }
        std::printf("%d ", value);
        state = classical_run(fig7, state);
    }

    std::printf("\n\n-- depth scaling (two-qutrit granularity) --\n");
    std::printf("%-6s %-12s %-14s %-12s\n", "N", "depth",
                "depth/log2(N)^2", "2q gates");
    for (const int n : {4, 8, 16, 32, 64}) {
        const Circuit c = build_qutrit_incrementer(n);
        const double lg = std::log2(static_cast<double>(n));
        std::printf("%-6d %-12d %-14.2f %-12zu\n", n, c.depth(),
                    c.depth() / (lg * lg), c.two_qudit_count());
    }
    std::printf("\nDepth grows as log^2(N) with zero ancilla "
                "(paper Section 5.3).\n");
    return 0;
}
