/**
 * Quantum neuron demo (paper Section 5.1): classify 4x4 binary images with
 * an N=4 artificial quantum neuron whose activation gate is the paper's
 * ancilla-free qutrit Generalized Toffoli.
 *
 *   ./build/examples/neuron_demo
 */
#include <cstdio>
#include <string>
#include <vector>

#include "apps/neuron.h"

using namespace qd;
using namespace qd::apps;

namespace {

/** 16-pixel patterns as +-1 sign vectors (X = -1). */
std::vector<int>
pattern(const std::string& rows)
{
    std::vector<int> v;
    for (const char ch : rows) {
        if (ch == 'X') {
            v.push_back(-1);
        } else if (ch == '.') {
            v.push_back(1);
        }
    }
    return v;
}

void
show(const std::string& name, const std::string& rows)
{
    std::printf("%s:\n", name.c_str());
    for (int r = 0; r < 4; ++r) {
        std::printf("  %.4s\n", rows.c_str() + 5 * r);
    }
}

}  // namespace

int
main()
{
    // The weight pattern the neuron is trained to recognise: a cross.
    const std::string weights = "X..X .XX. .XX. X..X";
    const std::string cross = weights;
    const std::string bars = "XX.. XX.. ..XX ..XX";
    const std::string noisy_cross = "X..X .XX. .X.. X..X";

    show("weights (cross)", weights);

    std::printf("\n%-14s %-22s %-10s\n", "input", "P(neuron activates)",
                "verdict");
    for (const auto& [name, img] :
         std::vector<std::pair<std::string, std::string>>{
             {"cross", cross}, {"noisy cross", noisy_cross},
             {"bars", bars}}) {
        const Real p = neuron_activation_probability(
            pattern(img), pattern(weights), NeuronMethod::kQutrit);
        std::printf("%-14s %-22.4f %-10s\n", name.c_str(), p,
                    p > 0.5 ? "MATCH" : "no match");
    }

    const Circuit c = build_neuron_circuit(pattern(cross), pattern(weights),
                                           NeuronMethod::kQutrit);
    std::printf("\ncircuit: %s\n", c.summary("neuron-N4").c_str());
    std::printf("The C^4 X activation uses the paper's qutrit tree: no "
                "ancilla, so the neuron\nfits machines at the "
                "ancilla-free frontier (paper Section 5.1).\n");
    return 0;
}
