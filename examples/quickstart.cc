/**
 * Quickstart: build the paper's 3-gate qutrit Toffoli (Figure 4), verify it
 * classically and on state vectors, then scale up to a 13-control
 * Generalized Toffoli and print its resources against the qubit baselines.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "constructions/gen_toffoli.h"
#include "constructions/qutrit_toffoli.h"
#include "qdsim/classical.h"
#include "qdsim/diagram.h"
#include "qdsim/gate_library.h"
#include "qdsim/simulator.h"

using namespace qd;

int
main()
{
    std::printf("-- paper Figure 4: Toffoli from 3 two-qutrit gates --\n");

    // Two qutrit controls + one qutrit target; inputs/outputs are qubits.
    Circuit toffoli(WireDims::uniform(3, 3));
    ctor::append_qutrit_tree_toffoli(
        toffoli, {ctor::on1(0), ctor::on1(1)}, 2,
        gates::embed(gates::X(), 3));
    std::printf("%s", render_diagram(toffoli).c_str());

    std::printf("\ntruth table (q0 q1 q2 -> q0 q1 q2):\n");
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            for (int t = 0; t < 2; ++t) {
                const auto out = classical_run(toffoli, {a, b, t});
                std::printf("  %d %d %d -> %d %d %d\n", a, b, t, out[0],
                            out[1], out[2]);
            }
        }
    }

    std::printf("\n-- scaling up: 13-control Generalized Toffoli --\n");
    for (const auto method :
         {ctor::Method::kQutrit, ctor::Method::kQubitDirtyAncilla,
          ctor::Method::kQubitNoAncilla}) {
        const auto built = ctor::build_gen_toffoli(method, 13);
        std::printf("  %s\n",
                    built.circuit.summary(built.label).c_str());
    }
    std::printf("\nThe qutrit tree is both the shallowest and the only "
                "log-depth option without ancilla\n(the paper's "
                "ancilla-free frontier).\n");
    return 0;
}
