/**
 * Noise-model exploration (paper Sections 6.1/7): a miniature Figure 11.
 * Runs the trajectory simulator on a small Generalized Toffoli under each
 * named noise model and under a user-scaled custom model.
 *
 *   ./build/examples/noise_exploration [n_controls] [trials]
 */
#include <cstdio>
#include <cstdlib>

#include "constructions/gen_toffoli.h"
#include "noise/models.h"
#include "noise/trajectory.h"

using namespace qd;

int
main(int argc, char** argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 7;
    const int trials = argc > 2 ? std::atoi(argv[2]) : 30;

    std::printf("Generalized Toffoli with %d controls, %d trajectories "
                "per point.\n\n", n, trials);

    const auto qutrit = ctor::build_gen_toffoli(ctor::Method::kQutrit, n);
    const auto qubit =
        ctor::build_gen_toffoli(ctor::Method::kQubitNoAncilla, n);

    noise::TrajectoryOptions opts;
    opts.trials = trials;

    std::printf("%-16s %-22s %-22s\n", "noise model", "QUTRIT fidelity",
                "QUBIT fidelity");
    std::vector<noise::NoiseModel> models =
        noise::superconducting_models();
    models.push_back(noise::ti_qubit());
    models.push_back(noise::dressed_qutrit());
    for (const auto& model : models) {
        const auto f3 =
            noise::run_noisy_trials(qutrit.circuit, model, opts);
        const auto f2 = noise::run_noisy_trials(qubit.circuit, model, opts);
        std::printf("%-16s %6.2f%% +- %-10.2f %6.2f%% +- %-10.2f\n",
                    model.name.c_str(), 100 * f3.mean_fidelity,
                    100 * f3.two_sigma(), 100 * f2.mean_fidelity,
                    100 * f2.two_sigma());
    }

    // A custom model: interpolate gate quality to find the crossover where
    // the qubit construction becomes usable.
    std::printf("\ncustom sweep: scaling SC gate errors by 1/k\n");
    std::printf("%-8s %-16s %-16s\n", "k", "QUTRIT", "QUBIT");
    for (const Real k : {1.0, 3.0, 10.0, 30.0}) {
        auto model = noise::sc();
        model.p1 /= k;
        model.p2 /= k;
        const auto f3 =
            noise::run_noisy_trials(qutrit.circuit, model, opts);
        const auto f2 = noise::run_noisy_trials(qubit.circuit, model, opts);
        std::printf("%-8.0f %6.2f%%          %6.2f%%\n", k,
                    100 * f3.mean_fidelity, 100 * f2.mean_fidelity);
    }
    return 0;
}
