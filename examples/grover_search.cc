/**
 * Grover search demo (paper Section 5.2): find a marked item among M = 64
 * using qutrit-decomposed multiply-controlled Z gates, printing the success
 * probability after each iteration.
 *
 *   ./build/examples/grover_search [marked_item]
 */
#include <cstdio>
#include <cstdlib>

#include "apps/grover.h"

using namespace qd;
using namespace qd::apps;

int
main(int argc, char** argv)
{
    const int n = 6;  // M = 64
    Index marked = 42;
    if (argc > 1) {
        marked = static_cast<Index>(std::atoll(argv[1])) % 64;
    }
    std::printf("Grover search over M = 64 items, marked item = %llu\n",
                static_cast<unsigned long long>(marked));
    std::printf("Each iteration uses a %d-controlled Z decomposed with "
                "the paper's qutrit tree.\n\n", n - 1);

    const int k_opt = grover_optimal_iterations(n);
    std::printf("%-11s %-14s %-10s\n", "iteration", "P(marked)",
                "analytic");
    for (int k = 0; k <= k_opt; ++k) {
        const Real p =
            grover_success_probability(n, marked, k, MczMethod::kQutrit);
        std::printf("%-11d %-14.4f %-10.4f%s\n", k, p,
                    grover_success_analytic(n, k),
                    k == k_opt ? "   <- optimal (floor(pi/4 sqrt(M)))"
                               : "");
    }

    const Circuit c =
        build_grover_circuit(n, marked, k_opt, MczMethod::kQutrit);
    std::printf("\nfull circuit: %s\n", c.summary("grover-64").c_str());
    return 0;
}
