/**
 * Transpiler demo: take a plain qubit circuit, lift it to qutrits, swap
 * its Toffolis for the paper's three-gate qutrit construction (Figure 4),
 * and clean up — watching the per-pass resource deltas.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/transpile_demo
 */
#include <cstdio>

#include "constructions/incrementer.h"
#include "qdsim/diagram.h"
#include "transpile/equivalence.h"
#include "transpile/lift.h"
#include "transpile/pass_manager.h"
#include "transpile/passes.h"

using namespace qd;
using namespace qd::transpile;

int
main()
{
    std::printf("-- a 3-bit qubit incrementer with native Toffolis --\n");
    const Circuit qubit = ctor::build_qubit_staircase_incrementer(
        3, /*decompose_toffoli=*/false);
    std::printf("%s%s\n", render_diagram(qubit).c_str(),
                qubit.summary("qubit circuit").c_str());

    std::printf("\n-- transpiling: lift -> substitute -> cleanup --\n");
    PassManager pm;
    pm.emplace<LiftQubitsToQutrits>()
        .emplace<SubstituteToffoli>()
        .emplace<CancelInversePairs>()
        .emplace<FuseSingleQuditGates>()
        .emplace<CompactMoments>();
    const Circuit qutrit = pm.run(qubit);
    std::printf("%s", pm.report().c_str());

    std::printf("\n-- rewritten qutrit circuit --\n");
    std::printf("%s%s\n", render_diagram(qutrit).c_str(),
                qutrit.summary("qutrit circuit").c_str());

    const Circuit lifted = LiftQubitsToQutrits().run(qubit);
    std::printf("\nlift preserves qubit semantics: %s\n",
                lift_preserves_semantics(qubit, lifted) ? "yes" : "NO");
    std::printf("rewrite preserves qubit-subspace action: %s\n",
                equal_on_qubit_subspace(lifted, qutrit) ? "yes" : "NO");
    return 0;
}
